#!/usr/bin/env bash
# Server smoke: start nf2d on an ephemeral port, drive it with
# nf2_client (DDL, DML, reads, metrics), then SIGTERM it and assert a
# clean graceful-shutdown exit — the CI job that proves the daemon
# actually serves and stops outside the unit-test harness.
#
#   usage: tools/server_smoke.sh <build_dir>
set -euo pipefail

BUILD_DIR="${1:?usage: $0 <build_dir>}"
NF2D="$BUILD_DIR/tools/nf2d"
CLIENT="$BUILD_DIR/tools/nf2_client"
DB_DIR="$(mktemp -d)"
LOG="$DB_DIR/nf2d.log"

cleanup() {
  [[ -n "${SERVER_PID:-}" ]] && kill -9 "$SERVER_PID" 2>/dev/null || true
  [[ -n "${FOLLOWER_PID:-}" ]] && kill -9 "$FOLLOWER_PID" 2>/dev/null || true
  rm -rf "$DB_DIR"
}
trap cleanup EXIT

"$NF2D" "$DB_DIR/db" --port 0 --workers 2 >"$LOG" 2>&1 &
SERVER_PID=$!

# Wait for the "listening on HOST:PORT" line (the kernel picked the port).
PORT=""
for _ in $(seq 1 50); do
  PORT=$(sed -n 's/^listening on [0-9.]*:\([0-9]*\)$/\1/p' "$LOG" | head -1)
  [[ -n "$PORT" ]] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$LOG"; echo "nf2d died"; exit 1; }
  sleep 0.2
done
[[ -n "$PORT" ]] || { cat "$LOG"; echo "nf2d never reported a port"; exit 1; }
echo "nf2d up on port $PORT (pid $SERVER_PID)"

"$CLIENT" --port "$PORT" --ping

OUT=$("$CLIENT" --port "$PORT" \
  -e "CREATE RELATION takes (Student STRING, Course STRING, Club STRING) MVD Student ->-> Course" \
  -e "INSERT INTO takes VALUES (ada, algebra, chess), (ada, crypto, chess), (bob, algebra, go)" \
  -e "SELECT COUNT(*) FROM takes" \
  -e "SHOW takes" \
  -e "\\metrics prom")
echo "$OUT" | grep -q "^3$" || { echo "COUNT mismatch"; echo "$OUT"; exit 1; }
echo "$OUT" | grep -q "nf2_server_requests_total" || {
  echo "metrics missing"; echo "$OUT"; exit 1; }

# Several statements through stdin mode, including an expected error.
# A statement the server answers with an error must exit exactly 1.
EXIT_CODE=0
printf 'LIST\nSELECT * FROM nonesuch\n' | "$CLIENT" --port "$PORT" || EXIT_CODE=$?
[[ "$EXIT_CODE" -eq 1 ]] || {
  echo "statement error exited $EXIT_CODE, want 1"; exit 1; }

# A connect failure (nothing listens on port 1) must exit exactly 2.
EXIT_CODE=0
"$CLIENT" --port 1 -e "LIST" 2>/dev/null || EXIT_CODE=$?
[[ "$EXIT_CODE" -eq 2 ]] || {
  echo "connect failure exited $EXIT_CODE, want 2"; exit 1; }

# Protocol v1: the same workload through one kBatch frame, mixed
# reads/writes, plus a mid-batch error that must not stop the batch
# (exit 1, but the trailing statements still ran and printed).
BATCH_OUT=$("$CLIENT" --port "$PORT" --batch \
  -e "INSERT INTO takes VALUES (eve, logic, chess)" \
  -e "SELECT COUNT(*) FROM takes" \
  -e "SELECT COUNT(*) FROM takes") || {
    echo "batch failed"; echo "$BATCH_OUT"; exit 1; }
echo "$BATCH_OUT" | grep -q "^4$" || {
  echo "batch COUNT mismatch"; echo "$BATCH_OUT"; exit 1; }
EXIT_CODE=0
BATCH_OUT=$("$CLIENT" --port "$PORT" --batch \
  -e "SELECT * FROM nonesuch" \
  -e "SELECT COUNT(*) FROM takes") || EXIT_CODE=$?
[[ "$EXIT_CODE" -eq 1 ]] || {
  echo "mid-batch error exited $EXIT_CODE, want 1"; exit 1; }
echo "$BATCH_OUT" | grep -q "^4$" || {
  echo "batch did not continue past the error"; echo "$BATCH_OUT"; exit 1; }

# The statement cache saw those repeated COUNTs: counters are live.
# (Capture, then grep: grep -q quitting early would SIGPIPE the client
# and fail the pipeline under pipefail even on a match.)
METRICS=$("$CLIENT" --port "$PORT" -e "\\metrics prom")
echo "$METRICS" | grep -q "^nf2_stmtcache_hits_total [1-9]" || {
  echo "statement cache hits missing from metrics"; exit 1; }

# --- WAL-shipped follower leg ----------------------------------------
# Boot a follower of the live primary from an empty datadir, wait for
# catch-up, tail a live write, and assert the read-only contract.
"$NF2D" "$DB_DIR/replica" --follow 127.0.0.1:"$PORT" --port 0 \
  >"$LOG.follower" 2>&1 &
FOLLOWER_PID=$!
FPORT=""
for _ in $(seq 1 50); do
  FPORT=$(sed -n 's/^listening on [0-9.]*:\([0-9]*\)$/\1/p' \
    "$LOG.follower" | head -1)
  [[ -n "$FPORT" ]] && break
  kill -0 "$FOLLOWER_PID" 2>/dev/null || {
    cat "$LOG.follower"; echo "follower died"; exit 1; }
  sleep 0.2
done
[[ -n "$FPORT" ]] || {
  cat "$LOG.follower"; echo "follower never listened"; exit 1; }
echo "follower up on port $FPORT (pid $FOLLOWER_PID)"

# Catch-up from empty: poll until the replicated rows are all visible.
COUNT=""
for _ in $(seq 1 100); do
  COUNT=$("$CLIENT" --port "$FPORT" -e "SELECT COUNT(*) FROM takes" \
    2>/dev/null) || true
  [[ "$COUNT" == "4" ]] && break
  sleep 0.2
done
[[ "$COUNT" == "4" ]] || {
  cat "$LOG.follower"
  echo "follower never caught up (last count '$COUNT')"; exit 1; }

# A write on the primary reaches the follower while it tails live.
"$CLIENT" --port "$PORT" \
  -e "INSERT INTO takes VALUES (mia, logic, go)" >/dev/null
COUNT=""
for _ in $(seq 1 100); do
  COUNT=$("$CLIENT" --port "$FPORT" -e "SELECT COUNT(*) FROM takes" \
    2>/dev/null) || true
  [[ "$COUNT" == "5" ]] && break
  sleep 0.2
done
[[ "$COUNT" == "5" ]] || {
  echo "live write never reached the follower"; exit 1; }

# Writes and transactions on the follower bounce (statement error = 1)
# and point the caller at the primary.
EXIT_CODE=0
OUT=$("$CLIENT" --port "$FPORT" \
  -e "INSERT INTO takes VALUES (zoe, zk, go)" 2>&1) || EXIT_CODE=$?
[[ "$EXIT_CODE" -eq 1 ]] || {
  echo "follower write exited $EXIT_CODE, want 1"; exit 1; }
echo "$OUT" | grep -qi "read-only" || {
  echo "follower write error did not say read-only:"; echo "$OUT"; exit 1; }
EXIT_CODE=0
"$CLIENT" --port "$FPORT" -e "BEGIN" >/dev/null 2>&1 || EXIT_CODE=$?
[[ "$EXIT_CODE" -eq 1 ]] || {
  echo "follower BEGIN exited $EXIT_CODE, want 1"; exit 1; }

# \replica reports the live stream; replication metrics are exported.
# (Capture, then grep — see the SIGPIPE note above.)
REPLICA=$("$CLIENT" --port "$FPORT" -e "\\replica")
echo "$REPLICA" | grep -q "connected: yes" || {
  echo "\\replica does not report a connected stream:"
  echo "$REPLICA"; exit 1; }
FMETRICS=$("$CLIENT" --port "$FPORT" -e "\\metrics prom")
echo "$FMETRICS" | grep -q "nf2_repl_lag_records" || {
  echo "replication metrics missing from follower \\metrics"; exit 1; }

# The follower shuts down cleanly too.
kill -TERM "$FOLLOWER_PID"
EXIT_CODE=0
wait "$FOLLOWER_PID" || EXIT_CODE=$?
[[ "$EXIT_CODE" -eq 0 ]] || {
  cat "$LOG.follower"; echo "follower exited $EXIT_CODE"; exit 1; }
FOLLOWER_PID=""
echo "follower leg OK"

# Graceful shutdown: SIGTERM must checkpoint and exit 0.
kill -TERM "$SERVER_PID"
EXIT_CODE=0
wait "$SERVER_PID" || EXIT_CODE=$?
[[ "$EXIT_CODE" -eq 0 ]] || { cat "$LOG"; echo "nf2d exited $EXIT_CODE"; exit 1; }
SERVER_PID=""
grep -q "shutting down" "$LOG" || { cat "$LOG"; echo "no shutdown line"; exit 1; }

# The shutdown checkpoint made the data durable: a fresh daemon serves it.
"$NF2D" "$DB_DIR/db" --port 0 >"$LOG.2" 2>&1 &
SERVER_PID=$!
PORT=""
for _ in $(seq 1 50); do
  PORT=$(sed -n 's/^listening on [0-9.]*:\([0-9]*\)$/\1/p' "$LOG.2" | head -1)
  [[ -n "$PORT" ]] && break
  sleep 0.2
done
[[ -n "$PORT" ]] || { cat "$LOG.2"; echo "restarted nf2d never listened"; exit 1; }
# 3 rows from the first leg + eve from the batch leg + mia from the
# follower leg's live-tail write.
COUNT=$("$CLIENT" --port "$PORT" -e "SELECT COUNT(*) FROM takes")
[[ "$COUNT" == "5" ]] || { echo "post-restart count '$COUNT' != 5"; exit 1; }
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
SERVER_PID=""

echo "server smoke OK"
