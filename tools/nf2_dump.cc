// nf2_dump — prints the contents of a single nf2db table file (.tbl):
// the stored schema, nest order, page statistics, and every live tuple.
//
//   $ nf2_dump <table_file> [--tuples]

#include <cstdio>
#include <cstring>
#include <string>

#include "core/format.h"
#include "storage/table.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <table_file> [--tuples]\n", argv[0]);
    return 2;
  }
  bool show_tuples = argc > 2 && std::strcmp(argv[2], "--tuples") == 0;
  auto table = nf2::Table::Open(argv[1]);
  if (!table.ok()) {
    std::fprintf(stderr, "cannot open table: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  std::printf("table file : %s\n", argv[1]);
  std::printf("schema     : %s\n",
              (*table)->schema().ToString().c_str());
  std::vector<std::string> order_names;
  for (size_t p : (*table)->nest_order()) {
    order_names.push_back((*table)->schema().attribute(p).name);
  }
  std::printf("nest order : %s\n",
              nf2::Join(order_names, " then ").c_str());

  auto scanned = (*table)->ScanWithIds();
  if (!scanned.ok()) {
    std::fprintf(stderr, "scan failed: %s\n",
                 scanned.status().ToString().c_str());
    return 1;
  }
  std::printf("tuples     : %zu\n", scanned->size());
  uint64_t expanded = 0;
  for (const auto& [rid, tuple] : *scanned) {
    expanded += tuple.ExpandedCount();
  }
  std::printf("|R*|       : %llu\n",
              static_cast<unsigned long long>(expanded));

  if (show_tuples) {
    std::printf("\n");
    for (const auto& [rid, tuple] : *scanned) {
      std::printf("%-18s %s\n", rid.ToString().c_str(),
                  tuple.ToString((*table)->schema()).c_str());
    }
  } else {
    auto rel = (*table)->ReadAll();
    if (rel.ok()) {
      std::printf("\n%s", nf2::RenderTable(*rel).c_str());
    }
  }
  return 0;
}
