// nf2_dump — prints the contents of a single nf2db table file (.tbl):
// the stored schema, nest order, page statistics, and every live tuple.
//
// Table files are shadow-paged by incremental checkpoints (DESIGN.md
// §12): when a MANIFEST.nf2 in the file's directory maps this file, the
// flat byte order contains stale page versions and only the manifest's
// logical->physical mapping is the live view — the dump follows it and
// says so. Without a (matching) manifest entry the file is read flat.
//
//   $ nf2_dump <table_file> [--tuples] [--shard <i>]
//
// For sharded databases (nf2d --shards N, DESIGN.md §13) the table
// files live under <db_dir>/shard-<i>/; --shard <i> redirects the
// given path into that shard's subdirectory, so scripts can keep the
// unsharded path and pick the shard with a flag.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "core/format.h"
#include "storage/checkpoint.h"
#include "storage/env.h"
#include "storage/table.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <table_file> [--tuples] [--shard <i>]\n",
                 argv[0]);
    return 2;
  }
  bool show_tuples = false;
  long shard = -1;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tuples") == 0) {
      show_tuples = true;
    } else if (std::strcmp(argv[i], "--shard") == 0 && i + 1 < argc) {
      char* end = nullptr;
      shard = std::strtol(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0' || shard < 0) {
        std::fprintf(stderr, "--shard takes a non-negative index\n");
        return 2;
      }
    } else {
      std::fprintf(stderr, "usage: %s <table_file> [--tuples] [--shard <i>]\n",
                   argv[0]);
      return 2;
    }
  }

  // Prefer the checkpoint manifest's page mapping when it covers this
  // file: that is the live view of a shadow-paged table.
  std::filesystem::path path(argv[1]);
  std::string shard_path;
  if (shard >= 0) {
    path = path.parent_path() / ("shard-" + std::to_string(shard)) /
           path.filename();
    shard_path = path.string();
    argv[1] = shard_path.data();
  }
  nf2::Env* env = nf2::Env::Default();
  auto manifest = nf2::LoadManifest(
      env, (path.parent_path() / "MANIFEST.nf2").string());
  if (manifest.ok()) {
    auto it = manifest->tables.find(path.filename().string());
    if (it != manifest->tables.end() && !it->second.pages.empty() &&
        nf2::ProbeTableFileId(env, argv[1]) == it->second.file_id) {
      auto mapped = nf2::ReadTableMapped(env, argv[1], it->second);
      if (!mapped.ok()) {
        std::fprintf(stderr, "mapped read failed: %s\n",
                     mapped.status().ToString().c_str());
        return 1;
      }
      std::printf("table file : %s\n", argv[1]);
      std::printf("view       : MANIFEST.nf2 mapping (%zu logical pages, "
                  "%llu physical)\n",
                  it->second.pages.size(),
                  static_cast<unsigned long long>(it->second.physical_pages));
      std::printf("schema     : %s\n", mapped->schema.ToString().c_str());
      std::vector<std::string> order_names;
      for (size_t p : mapped->nest_order) {
        order_names.push_back(mapped->schema.attribute(p).name);
      }
      std::printf("nest order : %s\n",
                  nf2::Join(order_names, " then ").c_str());
      std::printf("tuples     : %zu\n", mapped->relation.size());
      uint64_t expanded = 0;
      for (const nf2::NfrTuple& tuple : mapped->relation.tuples()) {
        expanded += tuple.ExpandedCount();
      }
      std::printf("|R*|       : %llu\n",
                  static_cast<unsigned long long>(expanded));
      if (show_tuples) {
        std::printf("\n");
        for (const nf2::NfrTuple& tuple : mapped->relation.tuples()) {
          std::printf("%s\n", tuple.ToString(mapped->schema).c_str());
        }
      } else {
        std::printf("\n%s", nf2::RenderTable(mapped->relation).c_str());
      }
      return 0;
    }
  } else if (manifest.status().code() != nf2::StatusCode::kNotFound) {
    std::fprintf(stderr, "warning: ignoring invalid MANIFEST.nf2: %s\n",
                 manifest.status().ToString().c_str());
  }

  auto table = nf2::Table::Open(argv[1]);
  if (!table.ok()) {
    std::fprintf(stderr, "cannot open table: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  std::printf("table file : %s\n", argv[1]);
  std::printf("view       : flat (no manifest mapping)\n");
  std::printf("schema     : %s\n",
              (*table)->schema().ToString().c_str());
  std::vector<std::string> order_names;
  for (size_t p : (*table)->nest_order()) {
    order_names.push_back((*table)->schema().attribute(p).name);
  }
  std::printf("nest order : %s\n",
              nf2::Join(order_names, " then ").c_str());

  auto scanned = (*table)->ScanWithIds();
  if (!scanned.ok()) {
    std::fprintf(stderr, "scan failed: %s\n",
                 scanned.status().ToString().c_str());
    return 1;
  }
  std::printf("tuples     : %zu\n", scanned->size());
  uint64_t expanded = 0;
  for (const auto& [rid, tuple] : *scanned) {
    expanded += tuple.ExpandedCount();
  }
  std::printf("|R*|       : %llu\n",
              static_cast<unsigned long long>(expanded));

  if (show_tuples) {
    std::printf("\n");
    for (const auto& [rid, tuple] : *scanned) {
      std::printf("%-18s %s\n", rid.ToString().c_str(),
                  tuple.ToString((*table)->schema()).c_str());
    }
  } else {
    auto rel = (*table)->ReadAll();
    if (rel.ok()) {
      std::printf("\n%s", nf2::RenderTable(*rel).c_str());
    }
  }
  return 0;
}
