// nf2d — the nf2db network daemon.
//
//   $ nf2d <db_dir> [--host A.B.C.D] [--port N] [--workers N] [--queue N]
//          [--shards N]
//
// Serves the database in <db_dir> over the v0 frame protocol (see
// server/protocol.h). With --shards N (N > 1) the directory holds N
// hash-partitioned engine shards at <db_dir>/shard-<i> behind a
// scatter-gather router (DESIGN.md §13); the shard count is pinned by
// a marker file on first start. Prints "listening on HOST:PORT" once
// ready —
// with --port 0 (the default is 4234) the kernel picks the port, so
// scripts should parse that line. SIGINT/SIGTERM trigger a graceful
// shutdown: in-flight requests drain, open transactions roll back, and
// a checkpoint runs before exit.

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "engine/database.h"
#include "server/server.h"
#include "shard/router.h"

namespace {

// Self-pipe: the signal handler writes one byte; main blocks on read.
int g_shutdown_pipe[2] = {-1, -1};

void HandleSignal(int /*sig*/) {
  const char byte = 1;
  // write(2) is async-signal-safe; the result is irrelevant (the pipe
  // being full already means a wakeup is pending).
  ssize_t ignored = ::write(g_shutdown_pipe[1], &byte, 1);
  (void)ignored;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <db_dir> [--host A.B.C.D] [--port N] "
               "[--workers N] [--queue N] [--shards N]\n",
               argv0);
  return 2;
}

bool ParseUint(const char* text, long max, long* out) {
  char* end = nullptr;
  errno = 0;
  long v = std::strtol(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || v < 0 || v > max) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const char* db_dir = argv[1];
  nf2::server::ServerOptions options;
  options.port = 4234;
  long shards = 1;
  for (int i = 2; i < argc; i += 2) {
    if (i + 1 >= argc) return Usage(argv[0]);
    const std::string flag = argv[i];
    long v = 0;
    if (flag == "--host") {
      options.host = argv[i + 1];
    } else if (flag == "--port" && ParseUint(argv[i + 1], 65535, &v)) {
      options.port = static_cast<uint16_t>(v);
    } else if (flag == "--workers" && ParseUint(argv[i + 1], 256, &v) &&
               v > 0) {
      options.workers = static_cast<int>(v);
    } else if (flag == "--queue" && ParseUint(argv[i + 1], 1 << 20, &v) &&
               v > 0) {
      options.queue_capacity = static_cast<size_t>(v);
    } else if (flag == "--shards" && ParseUint(argv[i + 1], 64, &v) && v > 0) {
      shards = v;
    } else {
      return Usage(argv[0]);
    }
  }

  // --shards 1 keeps the original single-engine path (no marker file,
  // no router layer); --shards N>1 opens the shard group.
  nf2::Result<std::unique_ptr<nf2::Database>> db =
      nf2::Status::Internal("unopened");
  nf2::Result<std::unique_ptr<nf2::shard::ShardRouter>> router =
      nf2::Status::Internal("unopened");
  if (shards > 1) {
    nf2::shard::ShardRouter::Options shard_options;
    shard_options.shards = static_cast<size_t>(shards);
    router = nf2::shard::ShardRouter::Open(db_dir, shard_options);
    if (!router.ok()) {
      std::fprintf(stderr, "cannot open sharded database: %s\n",
                   router.status().ToString().c_str());
      return 1;
    }
  } else {
    db = nf2::Database::Open(db_dir);
    if (!db.ok()) {
      std::fprintf(stderr, "cannot open database: %s\n",
                   db.status().ToString().c_str());
      return 1;
    }
  }

  if (::pipe(g_shutdown_pipe) != 0) {
    std::fprintf(stderr, "pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = HandleSignal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  nf2::server::Server server =
      shards > 1 ? nf2::server::Server(router->get(), options)
                 : nf2::server::Server(db->get(), options);
  nf2::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%u\n", options.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  char byte;
  ssize_t got;
  do {
    got = ::read(g_shutdown_pipe[0], &byte, 1);
  } while (got < 0 && errno == EINTR);

  std::printf("shutting down\n");
  std::fflush(stdout);
  server.Stop();
  return 0;
}
