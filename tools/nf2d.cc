// nf2d — the nf2db network daemon.
//
//   $ nf2d <db_dir> [--host A.B.C.D] [--port N] [--workers N] [--queue N]
//          [--shards N] [--follow HOST:PORT]
//
// Serves the database in <db_dir> over the v0 frame protocol (see
// server/protocol.h). With --shards N (N > 1) the directory holds N
// hash-partitioned engine shards at <db_dir>/shard-<i> behind a
// scatter-gather router (DESIGN.md §13); the shard count is pinned by
// a marker file on first start. Prints "listening on HOST:PORT" once
// ready —
// with --port 0 (the default is 4234) the kernel picks the port, so
// scripts should parse that line. SIGINT/SIGTERM trigger a graceful
// shutdown: in-flight requests drain, open transactions roll back, and
// a checkpoint runs before exit.
//
// Every nf2d is also a WAL-shipping primary: a follower may connect
// and kSubscribe at any time (DESIGN.md §14). With --follow HOST:PORT
// the daemon is instead a read replica of the primary at HOST:PORT:
// it probes the primary's shard count, opens (or creates) a matching
// local shard layout under <db_dir>, streams and applies the
// primary's WALs, and serves read-only sessions — writes and BEGIN
// answer kUnavailable. --follow and --shards are mutually exclusive
// (the primary dictates the layout).

#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "server/replication.h"
#include "server/server.h"
#include "shard/router.h"

namespace {

// Self-pipe: the signal handler writes one byte; main blocks on read.
int g_shutdown_pipe[2] = {-1, -1};

void HandleSignal(int /*sig*/) {
  const char byte = 1;
  // write(2) is async-signal-safe; the result is irrelevant (the pipe
  // being full already means a wakeup is pending).
  ssize_t ignored = ::write(g_shutdown_pipe[1], &byte, 1);
  (void)ignored;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <db_dir> [--host A.B.C.D] [--port N] "
               "[--workers N] [--queue N] [--shards N] "
               "[--follow HOST:PORT]\n",
               argv0);
  return 2;
}

bool ParseUint(const char* text, long max, long* out) {
  char* end = nullptr;
  errno = 0;
  long v = std::strtol(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || v < 0 || v > max) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseHostPort(const std::string& text, std::string* host,
                   uint16_t* port) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  long v = 0;
  if (!ParseUint(text.c_str() + colon + 1, 65535, &v) || v == 0) {
    return false;
  }
  *host = text.substr(0, colon);
  *port = static_cast<uint16_t>(v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const char* db_dir = argv[1];
  nf2::server::ServerOptions options;
  options.port = 4234;
  long shards = 1;
  bool shards_given = false;
  std::string follow_host;
  uint16_t follow_port = 0;
  for (int i = 2; i < argc; i += 2) {
    if (i + 1 >= argc) return Usage(argv[0]);
    const std::string flag = argv[i];
    long v = 0;
    if (flag == "--host") {
      options.host = argv[i + 1];
    } else if (flag == "--port" && ParseUint(argv[i + 1], 65535, &v)) {
      options.port = static_cast<uint16_t>(v);
    } else if (flag == "--workers" && ParseUint(argv[i + 1], 256, &v) &&
               v > 0) {
      options.workers = static_cast<int>(v);
    } else if (flag == "--queue" && ParseUint(argv[i + 1], 1 << 20, &v) &&
               v > 0) {
      options.queue_capacity = static_cast<size_t>(v);
    } else if (flag == "--shards" && ParseUint(argv[i + 1], 64, &v) && v > 0) {
      shards = v;
      shards_given = true;
    } else if (flag == "--follow" &&
               ParseHostPort(argv[i + 1], &follow_host, &follow_port)) {
      // Parsed into follow_host/follow_port.
    } else {
      return Usage(argv[0]);
    }
  }
  const bool follower = !follow_host.empty();
  if (follower && shards_given) {
    std::fprintf(stderr,
                 "--follow and --shards are mutually exclusive: a "
                 "follower's shard layout is dictated by its primary\n");
    return 2;
  }

  if (::pipe(g_shutdown_pipe) != 0) {
    std::fprintf(stderr, "pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = HandleSignal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  if (follower) {
    // The primary dictates the shard count; keep probing so a follower
    // started before (or restarted during) a primary outage comes up
    // on its own once the primary returns.
    nf2::Result<uint32_t> probed = nf2::Status::Internal("unprobed");
    for (int attempt = 0; attempt < 240; ++attempt) {
      probed = nf2::server::Replicator::ProbeShardCount(follow_host,
                                                        follow_port);
      if (probed.ok()) break;
      if (attempt == 0) {
        std::fprintf(stderr, "waiting for primary %s:%u (%s)\n",
                     follow_host.c_str(),
                     static_cast<unsigned>(follow_port),
                     probed.status().ToString().c_str());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(500));
    }
    if (!probed.ok()) {
      std::fprintf(stderr, "cannot reach primary %s:%u: %s\n",
                   follow_host.c_str(), static_cast<unsigned>(follow_port),
                   probed.status().ToString().c_str());
      return 1;
    }

    nf2::shard::ShardRouter::Options shard_options;
    shard_options.shards = *probed;
    nf2::Result<std::unique_ptr<nf2::shard::ShardRouter>> router =
        nf2::shard::ShardRouter::Open(db_dir, shard_options);
    if (!router.ok()) {
      std::fprintf(stderr, "cannot open follower database: %s\n",
                   router.status().ToString().c_str());
      return 1;
    }
    std::vector<nf2::Database*> shard_dbs;
    for (size_t i = 0; i < (*router)->shard_count(); ++i) {
      shard_dbs.push_back((*router)->shard_db(i));
    }
    nf2::server::Replicator::Options repl_options;
    repl_options.host = follow_host;
    repl_options.port = follow_port;
    repl_options.dir = db_dir;
    nf2::server::Replicator replicator(repl_options, shard_dbs,
                                       (*router)->metrics_registry(),
                                       nf2::Env::Default());
    nf2::Status repl_started = replicator.Start();
    if (!repl_started.ok()) {
      std::fprintf(stderr, "cannot start replication: %s\n",
                   repl_started.ToString().c_str());
      return 1;
    }
    nf2::server::ReadOnlyProvider provider(router->get(), &replicator);
    nf2::server::Server server(&provider, options);
    nf2::Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "cannot start server: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    std::printf("following %s:%u\n", follow_host.c_str(),
                static_cast<unsigned>(follow_port));
    std::printf("listening on %s:%u\n", options.host.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);

    char byte;
    ssize_t got;
    do {
      got = ::read(g_shutdown_pipe[0], &byte, 1);
    } while (got < 0 && errno == EINTR);

    std::printf("shutting down\n");
    std::fflush(stdout);
    // Stop() checkpoints through ReadOnlyProvider::ShutdownCheckpoint,
    // which halts the replicator before the final checkpoint runs.
    server.Stop();
    return 0;
  }

  // --shards 1 keeps the original single-engine path (no marker file,
  // no router layer); --shards N>1 opens the shard group.
  nf2::Result<std::unique_ptr<nf2::Database>> db =
      nf2::Status::Internal("unopened");
  nf2::Result<std::unique_ptr<nf2::shard::ShardRouter>> router =
      nf2::Status::Internal("unopened");
  if (shards > 1) {
    nf2::shard::ShardRouter::Options shard_options;
    shard_options.shards = static_cast<size_t>(shards);
    router = nf2::shard::ShardRouter::Open(db_dir, shard_options);
    if (!router.ok()) {
      std::fprintf(stderr, "cannot open sharded database: %s\n",
                   router.status().ToString().c_str());
      return 1;
    }
  } else {
    db = nf2::Database::Open(db_dir);
    if (!db.ok()) {
      std::fprintf(stderr, "cannot open database: %s\n",
                   db.status().ToString().c_str());
      return 1;
    }
  }

  // Every primary streams its WAL on demand (followers kSubscribe).
  std::vector<nf2::Database*> shard_dbs;
  nf2::MetricsRegistry* hub_registry = nullptr;
  if (shards > 1) {
    for (size_t i = 0; i < (*router)->shard_count(); ++i) {
      shard_dbs.push_back((*router)->shard_db(i));
    }
    hub_registry = (*router)->metrics_registry();
  } else {
    shard_dbs.push_back(db->get());
    hub_registry = (*db)->metrics();
  }
  nf2::server::ReplicationHub hub(shard_dbs, hub_registry);
  options.replication = &hub;

  nf2::server::Server server =
      shards > 1 ? nf2::server::Server(router->get(), options)
                 : nf2::server::Server(db->get(), options);
  nf2::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "cannot start server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("listening on %s:%u\n", options.host.c_str(),
              static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  char byte;
  ssize_t got;
  do {
    got = ::read(g_shutdown_pipe[0], &byte, 1);
  } while (got < 0 && errno == EINTR);

  std::printf("shutting down\n");
  std::fflush(stdout);
  server.Stop();
  return 0;
}
