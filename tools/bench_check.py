#!/usr/bin/env python3
"""Compare a bench_perf_trajectory JSON against a checked-in baseline.

Usage: bench_check.py NEW_JSON BASELINE_JSON [--threshold FRAC]

Sections are matched by name; for each match the optimized (interned /
durable) throughput must not regress by more than --threshold (default
0.25, i.e. 25%) relative to the baseline — but only when the two runs
did the same amount of work (matching "operations"): a smoke run
compared against a full-workload baseline has systematically different
per-op rates (amortization scales with workload size), so there the
throughput diff is reported without being enforced and the
self-relative floors below carry the gate. Sections present on only one
side are reported but do not fail the check, so the harness can grow new
sections without breaking older baselines. A section in the new run with
counters_identical == false always fails: that means the optimization
changed the paper's algebra, not just its speed.

A server_read_scaling section additionally gates the 1->4-client read
scaling factor: it must reach --scaling-floor (default 2.0), but only
when the run's host_cores is at least 4 — a 1-core runner physically
cannot scale concurrent reads, so there the factor is reported without
being enforced.

A pipelining section gates the protocol-v1 batch speedup: one kBatch
frame of N statements must beat N individual kQuery round-trips by at
least --pipelining-floor (default 2.0). Unlike read scaling this does
not depend on core count — batching removes frame turnarounds and gate
acquisitions on a single connection — so it is always enforced. The
statement-cache hit rate embedded in the section is reported alongside.

An indexed_selection section gates the planner's index-backed access
path: point selection through the inverted index must beat
scan-and-filter by at least --indexed-floor (default 2.0), always
enforced (the advantage is algorithmic, not a concurrency effect).

A sharded_scatter_gather section gates the shard subsystem: 4
concurrent writers' point-routed inserts over 4 shards must beat the
same workload over 1 shard by at least --shard-floor (default 2.0).
Like read scaling this is a concurrency effect, so it is enforced only
when the run's host_cores is at least 4; the auto-skip names the
actual core count and the bench JSON records the same skip
(shard_floor_enforced / shard_floor_skip_reason). The section's
counters_identical covers the correctness half (scattered COUNT(*)
must be exact), so a merge bug fails the check even when the floor is
relaxed.

A replica_catchup section gates WAL shipping: a cold follower must
replay the primary's log at no less than --replica-lag-floor (default
0.5) times the primary's ingest rate, always enforced (both rates are
measured on the same host back-to-back, so the ratio is self-relative
like the checkpoint gate). Its counters_identical covers the
correctness half: the follower's canonical form must render
bit-identical to the primary's at the caught-up position.

A factorized_aggregation section must show strictly growing per-depth
speedups (depth_speedups): the expansion the baseline scans is
exponential in nesting depth while the factorized cost is linear, so a
non-growing profile means the factorized path is secretly expanding.

A checkpoint_latency section is gated by --checkpoint-flat: the
incremental checkpoint latency at the large database size must stay
within --checkpoint-flat-ratio (default: half the run's size_ratio) of
the latency at the small size, and the incremental checkpoints must
have skipped more pages than they wrote. Both checks are self-relative
(within one run on one host), so they hold on any runner; the section
is therefore excluded from the cross-run throughput comparison, whose
millisecond-scale absolute latencies are not comparable across hosts.

Exit code 0 = OK, 1 = regression (or broken counters), 2 = usage error.
"""

import argparse
import json
import sys


def load_sections(path):
    with open(path) as f:
        doc = json.load(f)
    return doc, {s["name"]: s for s in doc.get("sections", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("new_json")
    parser.add_argument("baseline_json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated fractional regression (default 0.25)",
    )
    parser.add_argument(
        "--scaling-floor",
        type=float,
        default=2.0,
        help="minimum 1->4-client read scaling, enforced only when the "
        "run reports host_cores >= 4 (default 2.0)",
    )
    parser.add_argument(
        "--pipelining-floor",
        type=float,
        default=2.0,
        help="minimum kBatch-over-kQuery speedup for the pipelining "
        "section, always enforced (default 2.0)",
    )
    parser.add_argument(
        "--indexed-floor",
        type=float,
        default=2.0,
        help="minimum index-over-scan speedup for the indexed_selection "
        "section, always enforced (default 2.0)",
    )
    parser.add_argument(
        "--shard-floor",
        type=float,
        default=2.0,
        help="minimum 4-shard-over-1-shard point-write speedup for the "
        "sharded_scatter_gather section, enforced only when the run "
        "reports host_cores >= 4 (default 2.0)",
    )
    parser.add_argument(
        "--replica-lag-floor",
        type=float,
        default=0.5,
        help="minimum follower apply-over-primary-ingest rate ratio for "
        "the replica_catchup section, always enforced (default 0.5; "
        "below 1.0 a replica falls behind under sustained full-rate "
        "load, the slack below 1.0 covers decode+ack overhead on "
        "constrained runners)",
    )
    parser.add_argument(
        "--checkpoint-flat",
        action="store_true",
        help="enforce the checkpoint_latency flatness gate (without it "
        "the section is only reported)",
    )
    parser.add_argument(
        "--checkpoint-flat-ratio",
        type=float,
        default=None,
        help="maximum large/small incremental checkpoint latency ratio "
        "(default: half the run's size_ratio)",
    )
    args = parser.parse_args()

    try:
        new_doc, new_sections = load_sections(args.new_json)
        base_doc, base_sections = load_sections(args.baseline_json)
    except (OSError, json.JSONDecodeError, KeyError) as err:
        print(f"bench_check: cannot load inputs: {err}", file=sys.stderr)
        return 2

    print(
        f"bench_check: PR{new_doc.get('pr', '?')} "
        f"({args.new_json}) vs PR{base_doc.get('pr', '?')} "
        f"({args.baseline_json}), threshold {args.threshold:.0%}"
    )

    failed = False
    host_cores = int(new_doc.get("host_cores", 0))
    for name, new in sorted(new_sections.items()):
        if not new.get("counters_identical", True):
            print(f"  FAIL {name}: counters_identical is false")
            failed = True
            continue
        if name == "server_read_scaling":
            scaling = float(new.get("read_scaling_1_to_4", 0.0))
            if host_cores >= 4:
                if scaling < args.scaling_floor:
                    print(
                        f"  FAIL {name}: 1->4 scaling x{scaling:.2f} below "
                        f"floor x{args.scaling_floor:.2f} "
                        f"({host_cores} cores)"
                    )
                    failed = True
                else:
                    print(
                        f"  ok   {name}: 1->4 scaling x{scaling:.2f} "
                        f"(floor x{args.scaling_floor:.2f}, "
                        f"{host_cores} cores)"
                    )
            else:
                reason = new.get(
                    "scaling_floor_skip_reason",
                    f"host has {host_cores} core(s); the floor requires"
                    " >= 4",
                )
                print(
                    f"  info {name}: 1->4 scaling x{scaling:.2f} — "
                    f"floor auto-skipped: {reason}"
                )
        if name == "sharded_scatter_gather":
            speedup = float(new.get("shard_write_speedup_4_vs_1", 0.0))
            if host_cores >= 4:
                if speedup < args.shard_floor:
                    print(
                        f"  FAIL {name}: 4-vs-1-shard write speedup "
                        f"x{speedup:.2f} below floor "
                        f"x{args.shard_floor:.2f} ({host_cores} cores)"
                    )
                    failed = True
                else:
                    print(
                        f"  ok   {name}: 4-vs-1-shard write speedup "
                        f"x{speedup:.2f} (floor x{args.shard_floor:.2f}, "
                        f"{host_cores} cores), scattered COUNT(*) exact"
                    )
            else:
                reason = new.get(
                    "shard_floor_skip_reason",
                    f"host has {host_cores} core(s); the floor requires"
                    " >= 4",
                )
                print(
                    f"  info {name}: 4-vs-1-shard write speedup "
                    f"x{speedup:.2f} — floor auto-skipped: {reason}; "
                    f"scattered COUNT(*) exact"
                )
        if name == "pipelining":
            speedup = float(new.get("batch_speedup", 0.0))
            hit_rate = float(new.get("stmtcache_hit_rate", 0.0))
            if speedup < args.pipelining_floor:
                print(
                    f"  FAIL {name}: batch speedup x{speedup:.2f} below "
                    f"floor x{args.pipelining_floor:.2f}"
                )
                failed = True
            else:
                print(
                    f"  ok   {name}: batch speedup x{speedup:.2f} "
                    f"(floor x{args.pipelining_floor:.2f}), statement "
                    f"cache hit rate {hit_rate:.1%}"
                )
        if name == "indexed_selection":
            speedup = float(new.get("indexed_selection_speedup", 0.0))
            if speedup < args.indexed_floor:
                print(
                    f"  FAIL {name}: index speedup x{speedup:.2f} below "
                    f"floor x{args.indexed_floor:.2f}"
                )
                failed = True
            else:
                print(
                    f"  ok   {name}: index beat full scan x{speedup:.2f} "
                    f"(floor x{args.indexed_floor:.2f})"
                )
        if name == "replica_catchup":
            ratio = float(new.get("catchup_apply_ratio", 0.0))
            if ratio < args.replica_lag_floor:
                print(
                    f"  FAIL {name}: apply/ingest ratio x{ratio:.2f} below "
                    f"floor x{args.replica_lag_floor:.2f} — a replica at "
                    f"this rate falls behind under sustained load"
                )
                failed = True
            else:
                print(
                    f"  ok   {name}: follower applied at x{ratio:.2f} the "
                    f"primary's ingest rate (floor "
                    f"x{args.replica_lag_floor:.2f}), canonical form "
                    f"bit-identical"
                )
        if name == "factorized_aggregation":
            speedups = [float(s) for s in new.get("depth_speedups", [])]
            depths = new.get("depths", [])
            profile = ", ".join(
                f"d{d}=x{s:.1f}" for d, s in zip(depths, speedups)
            )
            grows = len(speedups) >= 2 and all(
                a < b for a, b in zip(speedups, speedups[1:])
            )
            if not grows:
                print(
                    f"  FAIL {name}: per-depth speedups must grow with "
                    f"depth, got [{profile}]"
                )
                failed = True
            else:
                print(f"  ok   {name}: speedup grows with depth [{profile}]")
        if name == "checkpoint_latency":
            size_ratio = float(new.get("size_ratio", 0.0))
            ratio = float(new.get("latency_ratio_large_over_small", 0.0))
            written = int(new.get("incremental_pages_written", 0))
            skipped = int(new.get("incremental_pages_skipped", 0))
            bound = (
                args.checkpoint_flat_ratio
                if args.checkpoint_flat_ratio is not None
                else size_ratio / 2.0
            )
            flat = ratio > 0 and ratio <= bound
            skips = skipped > written
            detail = (
                f"latency ratio x{ratio:.2f} over a x{size_ratio:.1f} size "
                f"spread (bound x{bound:.2f}); {written} pages written, "
                f"{skipped} skipped"
            )
            if args.checkpoint_flat and not (flat and skips):
                why = "latency not flat" if not flat else "nothing skipped"
                print(f"  FAIL {name}: {why} — {detail}")
                failed = True
            elif args.checkpoint_flat:
                print(f"  ok   {name}: {detail}")
            else:
                print(f"  info {name}: {detail} — gate off")
            # Self-relative gates only; absolute ms-scale latencies are
            # not comparable across hosts, so skip the throughput diff.
            continue
        base = base_sections.get(name)
        if base is None:
            print(f"  skip {name}: not in baseline")
            continue
        old_rate = float(base["optimized_ops_per_sec"])
        new_rate = float(new["optimized_ops_per_sec"])
        if old_rate <= 0:
            print(f"  skip {name}: baseline rate is zero")
            continue
        change = new_rate / old_rate - 1.0
        new_ops = int(new.get("operations", 0))
        base_ops = int(base.get("operations", 0))
        if new_ops != base_ops:
            # Different workload sizes: per-op rates are not comparable
            # (amortization scales with size), so report only — the
            # floors above are the gates that hold across sizes.
            print(
                f"  info {name}: {old_rate:,.0f} -> {new_rate:,.0f} ops/s "
                f"({change:+.1%}) on a different workload "
                f"({base_ops} vs {new_ops} ops) — not enforced"
            )
            continue
        verdict = "FAIL" if change < -args.threshold else "ok"
        print(
            f"  {verdict:4s} {name}: {old_rate:,.0f} -> {new_rate:,.0f} "
            f"ops/s ({change:+.1%})"
        )
        if verdict == "FAIL":
            failed = True
    for name in sorted(set(base_sections) - set(new_sections)):
        print(f"  warn {name}: in baseline but missing from new run")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
