#!/usr/bin/env python3
"""Compare a bench_perf_trajectory JSON against a checked-in baseline.

Usage: bench_check.py NEW_JSON BASELINE_JSON [--threshold FRAC]

Sections are matched by name; for each match the optimized (interned /
durable) throughput must not regress by more than --threshold (default
0.25, i.e. 25%) relative to the baseline. Sections present on only one
side are reported but do not fail the check, so the harness can grow new
sections without breaking older baselines. A section in the new run with
counters_identical == false always fails: that means the optimization
changed the paper's algebra, not just its speed.

Exit code 0 = OK, 1 = regression (or broken counters), 2 = usage error.
"""

import argparse
import json
import sys


def load_sections(path):
    with open(path) as f:
        doc = json.load(f)
    return doc, {s["name"]: s for s in doc.get("sections", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("new_json")
    parser.add_argument("baseline_json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated fractional regression (default 0.25)",
    )
    args = parser.parse_args()

    try:
        new_doc, new_sections = load_sections(args.new_json)
        base_doc, base_sections = load_sections(args.baseline_json)
    except (OSError, json.JSONDecodeError, KeyError) as err:
        print(f"bench_check: cannot load inputs: {err}", file=sys.stderr)
        return 2

    print(
        f"bench_check: PR{new_doc.get('pr', '?')} "
        f"({args.new_json}) vs PR{base_doc.get('pr', '?')} "
        f"({args.baseline_json}), threshold {args.threshold:.0%}"
    )

    failed = False
    for name, new in sorted(new_sections.items()):
        if not new.get("counters_identical", True):
            print(f"  FAIL {name}: counters_identical is false")
            failed = True
            continue
        base = base_sections.get(name)
        if base is None:
            print(f"  skip {name}: not in baseline")
            continue
        old_rate = float(base["optimized_ops_per_sec"])
        new_rate = float(new["optimized_ops_per_sec"])
        if old_rate <= 0:
            print(f"  skip {name}: baseline rate is zero")
            continue
        change = new_rate / old_rate - 1.0
        verdict = "FAIL" if change < -args.threshold else "ok"
        print(
            f"  {verdict:4s} {name}: {old_rate:,.0f} -> {new_rate:,.0f} "
            f"ops/s ({change:+.1%})"
        )
        if verdict == "FAIL":
            failed = True
    for name in sorted(set(base_sections) - set(new_sections)):
        print(f"  warn {name}: in baseline but missing from new run")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
