// nf2_shell — the interactive NFRQL shell.
//
//   $ nf2_shell <db_dir>
//
// Reads one NFRQL statement per line (see nfrql/parser.h for the
// grammar), executes it against the database in <db_dir>, and prints
// the result. `help` lists commands; `quit`/EOF exits (checkpointing
// on the way out).

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "engine/database.h"
#include "nfrql/executor.h"
#include "util/string_util.h"

namespace {

constexpr char kHelp[] = R"(NFRQL statements:
  CREATE RELATION name (attr TYPE, ...) [NEST a, b, ...]
      [FD a,b -> c]... [MVD a ->-> b]...     types: STRING INT DOUBLE BOOL SET
  DROP RELATION name
  INSERT INTO name VALUES (v, ...)[, (v, ...)]...
  DELETE FROM name VALUES (v, ...) | DELETE FROM name WHERE cond
  UPDATE name SET attr = v [, attr = v]... [WHERE cond]
  SELECT * | cols | COUNT(*) FROM name [JOIN name]... [WHERE cond]
  SELECT g, COUNT(c) FROM name [WHERE cond] GROUP BY g
  SHOW name            print the stored nested relation
  DESCRIBE name        schema, nest order, dependencies, sizes
  NEST name ON a[,b]   print a re-nested view
  UNNEST name ON a     print an unnested view
  EXPLAIN stmt         the operator plan tree, without executing
  PROFILE stmt         execute stmt, report spans with times + counts
  LIST | STATS name | CHECKPOINT
  BEGIN | COMMIT | ROLLBACK
  \metrics [prom]      engine metrics (human or Prometheus text format)
  \shards              per-shard relation counts, WAL bytes, checkpoint age
                       (sharded nf2d only; the embedded shell is one engine)
  \timing              toggle per-statement wall-clock reporting
  \batch               start collecting statements instead of executing
                       (\go runs them all in order, \batch again discards)
  help | quit)";

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <db_dir>\n", argv[0]);
    return 2;
  }
  auto db = nf2::Database::Open(argv[1]);
  if (!db.ok()) {
    std::fprintf(stderr, "cannot open database: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  nf2::Executor executor(db->get());
  std::printf("nf2db shell — database at %s (type 'help')\n", argv[1]);

  std::string line;
  bool timing = false;
  bool batching = false;
  std::vector<std::string> batch;
  while (true) {
    std::printf(batching ? "batch> " : "nfrql> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string trimmed = nf2::Trim(line);
    if (trimmed.empty()) continue;
    std::string lower = nf2::ToLower(trimmed);
    if (lower == "quit" || lower == "exit") break;
    if (lower == "help") {
      std::printf("%s\n", kHelp);
      continue;
    }
    if (lower == "\\timing") {
      timing = !timing;
      std::printf("timing %s\n", timing ? "on" : "off");
      continue;
    }
    if (lower == "\\batch") {
      if (batching) {
        std::printf("batch discarded (%zu statements)\n", batch.size());
        batch.clear();
      } else {
        std::printf("batch mode — statements queue until \\go\n");
      }
      batching = !batching;
      continue;
    }
    if (lower == "\\go") {
      if (!batching) {
        std::printf("error: \\go outside batch mode (start with \\batch)\n");
        continue;
      }
      // Same semantics as a kBatch frame against nf2d: in-order
      // execution, per-statement results, errors don't stop the batch.
      const auto batch_start = std::chrono::steady_clock::now();
      size_t failed = 0;
      for (size_t i = 0; i < batch.size(); ++i) {
        nf2::Result<std::string> out = executor.Execute(batch[i]);
        std::printf("[%zu] ", i + 1);
        if (out.ok()) {
          std::printf("%s\n", out->c_str());
        } else {
          std::printf("error: %s\n", out.status().ToString().c_str());
          ++failed;
        }
      }
      const auto batch_elapsed =
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - batch_start);
      std::printf("batch: %zu statements, %zu failed", batch.size(), failed);
      if (timing) {
        std::printf(", %.3f ms",
                    static_cast<double>(batch_elapsed.count()) / 1000.0);
      }
      std::printf("\n");
      batch.clear();
      batching = false;
      continue;
    }
    if (batching) {
      batch.push_back(trimmed);
      std::printf("queued [%zu]\n", batch.size());
      continue;
    }
    if (lower == "\\shards") {
      // Same reply the single-engine server session gives: the shell
      // embeds one engine; sharding lives behind nf2d --shards.
      std::printf("single engine (no shards); start nf2d with --shards N\n");
      continue;
    }
    if (lower == "\\metrics" || lower == "\\metrics prom") {
      std::string text =
          (*db)->MetricsText(/*prometheus=*/lower.ends_with("prom"));
      // Prometheus exposition format requires the output to end with a
      // newline; don't add a second one when the renderer already did.
      if (text.empty() || text.back() != '\n') text.push_back('\n');
      std::fputs(text.c_str(), stdout);
      continue;
    }
    const auto start = std::chrono::steady_clock::now();
    nf2::Result<std::string> out = executor.Execute(trimmed);
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    if (out.ok()) {
      std::printf("%s\n", out->c_str());
    } else {
      std::printf("error: %s\n", out.status().ToString().c_str());
    }
    if (timing) {
      std::printf("Time: %.3f ms\n",
                  static_cast<double>(elapsed.count()) / 1000.0);
    }
  }
  std::printf("bye\n");
  return 0;
}
