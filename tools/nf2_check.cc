// nf2_check — offline integrity checker for an nf2db database directory.
//
//   $ nf2_check <db_dir>
//
// Verifies, for every cataloged relation:
//   1. the table file loads and its tuples match the schema,
//   2. the stored NFR is well-formed (disjoint expansions),
//   3. it is exactly the canonical form V_P(R*) for its nest order,
//   4. declared FDs hold on R* (MVDs are reported but not required —
//      the paper's §2 point),
//   5. the WAL replays cleanly on top (by opening the engine).
//
// Exit code 0 when everything checks out.

#include <cstdio>
#include <filesystem>

#include "core/nest.h"
#include "engine/database.h"
#include "storage/table.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <db_dir>\n", argv[0]);
    return 2;
  }
  const std::string dir = argv[1];
  if (!std::filesystem::exists(dir)) {
    std::fprintf(stderr, "no such directory: %s\n", dir.c_str());
    return 2;
  }
  // Opening the database runs recovery, which itself verifies stored
  // canonical forms and replays the WAL.
  auto db = nf2::Database::Open(dir);
  if (!db.ok()) {
    std::printf("FAIL: recovery: %s\n", db.status().ToString().c_str());
    return 1;
  }
  nf2::Status audit = (*db)->VerifyIntegrity();
  if (!audit.ok()) {
    std::printf("FAIL: integrity audit: %s\n", audit.ToString().c_str());
    return 1;
  }
  int failures = 0;
  for (const std::string& name : (*db)->ListRelations()) {
    auto info = (*db)->Info(name);
    auto rel = (*db)->Relation(name);
    if (!info.ok() || !rel.ok()) {
      std::printf("FAIL %s: metadata missing\n", name.c_str());
      ++failures;
      continue;
    }
    nf2::Status valid = (*rel)->Validate();
    bool canonical = (*rel)->EqualsAsSet(
        nf2::CanonicalForm((*rel)->Expand(), (*info)->nest_order));
    bool fds_ok = (*info)->fd_set().SatisfiedBy((*rel)->Expand());
    bool mvds_ok = (*info)->mvd_set().SatisfiedBy((*rel)->Expand());
    if (!valid.ok() || !canonical || !fds_ok) {
      std::printf("FAIL %s: well-formed=%s canonical=%s fds=%s\n",
                  name.c_str(), valid.ok() ? "yes" : "NO",
                  canonical ? "yes" : "NO", fds_ok ? "yes" : "NO");
      ++failures;
      continue;
    }
    auto stats = (*db)->Stats(name);
    std::printf("OK   %s: %zu NFR tuples, |R*|=%llu, canonical, "
                "FDs hold, MVDs %s\n",
                name.c_str(), (*rel)->size(),
                static_cast<unsigned long long>((*rel)->ExpandedSize()),
                mvds_ok ? "hold" : "do not currently hold (advisory)");
    (void)stats;
  }
  if (failures == 0) {
    std::printf("database %s: all checks passed\n", dir.c_str());
    return 0;
  }
  std::printf("database %s: %d relation(s) FAILED\n", dir.c_str(), failures);
  return 1;
}
