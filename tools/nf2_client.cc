// nf2_client — command-line client for nf2d.
//
//   $ nf2_client --host A.B.C.D --port N [-e STMT]... [--ping]
//
// With -e flags, executes each statement in order and prints the
// results; otherwise reads one statement per line from stdin. Exits
// non-zero if any statement fails (kBusy counts as failure — retry
// loops belong in the caller). --ping round-trips a ping frame first.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "server/client.h"
#include "util/string_util.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host A.B.C.D] [--port N] [-e STMT]... [--ping]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  long port = 4234;
  bool ping = false;
  std::vector<std::string> statements;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--ping") {
      ping = true;
    } else if (flag == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (flag == "--port" && i + 1 < argc) {
      port = std::atol(argv[++i]);
      if (port < 1 || port > 65535) return Usage(argv[0]);
    } else if (flag == "-e" && i + 1 < argc) {
      statements.emplace_back(argv[++i]);
    } else {
      return Usage(argv[0]);
    }
  }

  auto client =
      nf2::server::Client::Connect(host, static_cast<uint16_t>(port));
  if (!client.ok()) {
    std::fprintf(stderr, "cannot connect: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  if (ping) {
    nf2::Status s = client->Ping();
    if (!s.ok()) {
      std::fprintf(stderr, "ping failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("pong\n");
  }

  int failures = 0;
  auto run = [&](const std::string& stmt) {
    nf2::Result<std::string> out = client->Execute(stmt);
    if (out.ok()) {
      std::printf("%s\n", out->c_str());
    } else {
      std::printf("error: %s\n", out.status().ToString().c_str());
      ++failures;
    }
  };

  if (!statements.empty()) {
    for (const std::string& stmt : statements) run(stmt);
  } else if (!ping) {
    std::string line;
    while (std::getline(std::cin, line)) {
      std::string trimmed = nf2::Trim(line);
      if (trimmed.empty()) continue;
      run(trimmed);
    }
  }

  nf2::Status quit = client->Quit();
  if (!quit.ok()) {
    std::fprintf(stderr, "quit failed: %s\n", quit.ToString().c_str());
    return 1;
  }
  return failures == 0 ? 0 : 1;
}
