// nf2_client — command-line client for nf2d.
//
//   $ nf2_client --host A.B.C.D --port N [-e STMT]... [--ping] [--batch]
//
// With -e flags, executes each statement in order and prints the
// results; otherwise reads one statement per line from stdin. --batch
// ships all statements in one kBatch frame (protocol v1) instead of one
// round-trip each. --ping round-trips a ping frame first.
//
// A kBusy response is retried with bounded jittered backoff (the server
// did not execute the request, so a retry is always safe); a statement
// still failing after that counts as a statement error.
//
// Exit codes: 0 = every statement succeeded, 1 = at least one statement
// failed (server answered with an error), 2 = usage or connect/transport
// failure (no server answer to report).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <iostream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "util/string_util.h"

namespace {

constexpr int kExitStatementError = 1;
constexpr int kExitTransportError = 2;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--host A.B.C.D] [--port N] [-e STMT]... [--ping] "
               "[--batch]\n",
               argv0);
  return kExitTransportError;
}

/// Retries `attempt` while it reports kUnavailable from the server
/// (kBusy: the request was not executed, so retrying is safe) with
/// bounded jittered exponential backoff. Any other outcome — success,
/// statement error, transport failure — is returned as-is.
template <typename T>
nf2::Result<T> RetryBusy(
    const std::function<nf2::Result<T>(bool* remote_error)>& attempt,
    bool* remote_error) {
  constexpr int kMaxAttempts = 6;
  constexpr auto kBaseDelay = std::chrono::milliseconds(20);
  static std::mt19937 rng{std::random_device{}()};
  auto delay = kBaseDelay;
  for (int tries = 1;; ++tries) {
    nf2::Result<T> out = attempt(remote_error);
    if (out.ok() || out.status().code() != nf2::StatusCode::kUnavailable ||
        !*remote_error || tries >= kMaxAttempts) {
      return out;
    }
    // Full jitter: sleeping a uniform slice of the doubling window keeps
    // retrying clients from re-colliding in lockstep.
    std::uniform_int_distribution<long> jitter(1, delay.count());
    std::this_thread::sleep_for(std::chrono::milliseconds(jitter(rng)));
    delay *= 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  long port = 4234;
  bool ping = false;
  bool batch = false;
  std::vector<std::string> statements;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--ping") {
      ping = true;
    } else if (flag == "--batch") {
      batch = true;
    } else if (flag == "--host" && i + 1 < argc) {
      host = argv[++i];
    } else if (flag == "--port" && i + 1 < argc) {
      port = std::atol(argv[++i]);
      if (port < 1 || port > 65535) return Usage(argv[0]);
    } else if (flag == "-e" && i + 1 < argc) {
      statements.emplace_back(argv[++i]);
    } else {
      return Usage(argv[0]);
    }
  }

  auto client =
      nf2::server::Client::Connect(host, static_cast<uint16_t>(port));
  if (!client.ok()) {
    std::fprintf(stderr, "cannot connect: %s\n",
                 client.status().ToString().c_str());
    return kExitTransportError;
  }

  if (ping) {
    nf2::Status s = client->Ping();
    if (!s.ok()) {
      std::fprintf(stderr, "ping failed: %s\n", s.ToString().c_str());
      return kExitTransportError;
    }
    std::printf("pong\n");
  }

  if (statements.empty() && !ping) {
    std::string line;
    while (std::getline(std::cin, line)) {
      std::string trimmed = nf2::Trim(line);
      if (!trimmed.empty()) statements.push_back(std::move(trimmed));
    }
  }

  int failures = 0;
  bool transport_failed = false;
  auto report = [&](const nf2::Result<std::string>& out) {
    if (out.ok()) {
      std::printf("%s\n", out->c_str());
    } else {
      std::printf("error: %s\n", out.status().ToString().c_str());
      ++failures;
    }
  };

  if (batch) {
    // Ship in protocol-limit-sized chunks; almost always exactly one.
    for (size_t begin = 0;
         begin < statements.size() && !transport_failed;
         begin += nf2::server::kMaxBatchStatements) {
      const size_t end = std::min(
          statements.size(), begin + nf2::server::kMaxBatchStatements);
      std::vector<std::string> chunk(statements.begin() + begin,
                                     statements.begin() + end);
      bool remote = false;
      auto results = RetryBusy<std::vector<nf2::Result<std::string>>>(
          [&](bool* remote_error) {
            return client->ExecuteBatch(chunk, remote_error);
          },
          &remote);
      if (!results.ok()) {
        std::fprintf(stderr, "batch failed: %s\n",
                     results.status().ToString().c_str());
        if (remote) {
          failures += static_cast<int>(chunk.size());
        } else {
          transport_failed = true;
        }
        continue;
      }
      for (const auto& out : *results) report(out);
    }
  } else {
    for (const std::string& stmt : statements) {
      bool remote = false;
      auto out = RetryBusy<std::string>(
          [&](bool* remote_error) {
            return client->Execute(stmt, remote_error);
          },
          &remote);
      if (!out.ok() && !remote) {
        std::fprintf(stderr, "transport failure: %s\n",
                     out.status().ToString().c_str());
        transport_failed = true;
        break;
      }
      report(out);
    }
  }

  if (transport_failed) return kExitTransportError;

  nf2::Status quit = client->Quit();
  if (!quit.ok()) {
    std::fprintf(stderr, "quit failed: %s\n", quit.ToString().c_str());
    return kExitTransportError;
  }
  return failures == 0 ? 0 : kExitStatementError;
}
