#include <gtest/gtest.h>

#include <filesystem>

#include "engine/database.h"
#include "tests/test_util.h"

namespace nf2 {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("nf2_db_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  Status CreateStudents(Database* db) {
    // Student ->-> Course | Club, nest order advised from the MVD.
    return db->CreateRelation(
        "students", Schema::OfStrings({"Student", "Course", "Club"}),
        /*nest_order=*/{}, /*fds=*/{},
        /*mvds=*/{Mvd{AttrSet{0}, AttrSet{1}}});
  }

  std::string dir_;
};

FlatTuple Scb(const char* s, const char* c, const char* b) {
  return FlatTuple{V(s), V(c), V(b)};
}

TEST_F(DatabaseTest, OpenCreatesDirectory) {
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_TRUE(std::filesystem::exists(dir_));
  EXPECT_TRUE((*db)->ListRelations().empty());
}

TEST_F(DatabaseTest, CreateInsertQuery) {
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(CreateStudents(db->get()).ok());
  ASSERT_TRUE((*db)->Insert("students", Scb("s1", "c1", "b1")).ok());
  ASSERT_TRUE((*db)->Insert("students", Scb("s1", "c2", "b1")).ok());
  ASSERT_TRUE((*db)->Insert("students", Scb("s2", "c1", "b2")).ok());

  Result<bool> has = (*db)->Contains("students", Scb("s1", "c2", "b1"));
  ASSERT_TRUE(has.ok());
  EXPECT_TRUE(*has);

  Result<FlatRelation> scan = (*db)->Scan("students");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), 3u);

  Result<FlatRelation> q =
      (*db)->Query("students", Predicate::Eq(0, V("s1")));
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->size(), 2u);
}

TEST_F(DatabaseTest, NfrIsCanonicalAndCompressed) {
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(CreateStudents(db->get()).ok());
  // A student with 3 courses: one NFR tuple instead of 3 flat ones.
  for (const char* c : {"c1", "c2", "c3"}) {
    ASSERT_TRUE((*db)->Insert("students", Scb("s1", c, "b1")).ok());
  }
  Result<const NfrRelation*> rel = (*db)->Relation("students");
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ((*rel)->size(), 1u);
  EXPECT_EQ((*rel)->ExpandedSize(), 3u);
  Result<RelationStats> stats = (*db)->Stats("students");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->nfr_tuples, 1u);
  EXPECT_EQ(stats->flat_tuples, 3u);
  EXPECT_GT(stats->TupleReduction(), 2.9);
}

TEST_F(DatabaseTest, ErrorsOnBadOperations) {
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->Insert("nope", Scb("s", "c", "b")).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(CreateStudents(db->get()).ok());
  EXPECT_EQ(CreateStudents(db->get()).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ((*db)->Insert("students", FlatTuple{V("s")}).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE((*db)->Insert("students", Scb("s1", "c1", "b1")).ok());
  EXPECT_EQ((*db)->Insert("students", Scb("s1", "c1", "b1")).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ((*db)->Delete("students", Scb("s9", "c9", "b9")).code(),
            StatusCode::kNotFound);
  EXPECT_EQ((*db)->Scan("nope").status().code(), StatusCode::kNotFound);
}

TEST_F(DatabaseTest, DeleteMaintainsCanonicalForm) {
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(CreateStudents(db->get()).ok());
  for (const char* s : {"s1", "s2"}) {
    for (const char* c : {"c1", "c2"}) {
      ASSERT_TRUE((*db)->Insert("students", Scb(s, c, "b1")).ok());
    }
  }
  ASSERT_TRUE((*db)->Delete("students", Scb("s1", "c1", "b1")).ok());
  Result<const NfrRelation*> rel = (*db)->Relation("students");
  ASSERT_TRUE(rel.ok());
  Result<const RelationInfo*> info = (*db)->Info("students");
  ASSERT_TRUE(info.ok());
  NfrRelation oracle =
      CanonicalForm((*rel)->Expand(), (*info)->nest_order);
  EXPECT_TRUE((*rel)->EqualsAsSet(oracle));
}

TEST_F(DatabaseTest, DurableAcrossReopenViaWal) {
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(CreateStudents(db->get()).ok());
    ASSERT_TRUE((*db)->Insert("students", Scb("s1", "c1", "b1")).ok());
    ASSERT_TRUE((*db)->Insert("students", Scb("s1", "c2", "b1")).ok());
    ASSERT_TRUE((*db)->Delete("students", Scb("s1", "c1", "b1")).ok());
    // No explicit checkpoint: destructor checkpoints, but test the WAL
    // path too by copying the directory? Simpler: rely on destructor
    // here; the WAL-only path is tested below.
  }
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok()) << db.status();
  Result<FlatRelation> scan = (*db)->Scan("students");
  ASSERT_TRUE(scan.ok());
  ASSERT_EQ(scan->size(), 1u);
  EXPECT_TRUE(scan->Contains(Scb("s1", "c2", "b1")));
}

TEST_F(DatabaseTest, RecoveryReplaysWalWithoutCheckpoint) {
  // Simulate a crash: build a second Database handle state by writing
  // through one instance and never letting its destructor checkpoint.
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(CreateStudents(db->get()).ok());
    ASSERT_TRUE((*db)->Insert("students", Scb("s1", "c1", "b1")).ok());
    ASSERT_TRUE((*db)->Insert("students", Scb("s2", "c1", "b2")).ok());
    // Crash: leak the object so neither checkpoint nor flush runs.
    (void)(*db).release();
  }
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok()) << db.status();
  Result<FlatRelation> scan = (*db)->Scan("students");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), 2u);
  EXPECT_TRUE(scan->Contains(Scb("s1", "c1", "b1")));
  EXPECT_TRUE(scan->Contains(Scb("s2", "c1", "b2")));
}

TEST_F(DatabaseTest, CheckpointTruncatesWal) {
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(CreateStudents(db->get()).ok());
  ASSERT_TRUE((*db)->Insert("students", Scb("s1", "c1", "b1")).ok());
  EXPECT_GT((*db)->wal_records_since_checkpoint(), 0u);
  ASSERT_TRUE((*db)->Checkpoint().ok());
  EXPECT_EQ((*db)->wal_records_since_checkpoint(), 0u);
  // State still correct after checkpoint + reopen.
  Result<FlatRelation> scan = (*db)->Scan("students");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), 1u);
}

TEST_F(DatabaseTest, AutoCheckpoint) {
  Database::Options options;
  options.auto_checkpoint_every = 4;
  auto db = Database::Open(dir_, options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(CreateStudents(db->get()).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        (*db)->Insert("students",
                      Scb(StrCat("s", i).c_str(), "c1", "b1"))
            .ok());
  }
  // 6 inserts with threshold 4: at least one auto checkpoint fired.
  EXPECT_LT((*db)->wal_records_since_checkpoint(), 6u);
}

TEST_F(DatabaseTest, DropRelation) {
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(CreateStudents(db->get()).ok());
  ASSERT_TRUE((*db)->DropRelation("students").ok());
  EXPECT_FALSE((*db)->Relation("students").ok());
  EXPECT_EQ((*db)->DropRelation("students").code(), StatusCode::kNotFound);
  // Recreate works.
  EXPECT_TRUE(CreateStudents(db->get()).ok());
}

TEST_F(DatabaseTest, AdvisedNestOrderFromMvd) {
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(CreateStudents(db->get()).ok());
  Result<const RelationInfo*> info = (*db)->Info("students");
  ASSERT_TRUE(info.ok());
  // Student (the MVD LHS) must be nested last.
  EXPECT_EQ((*info)->nest_order.back(), 0u);
}

TEST_F(DatabaseTest, MultipleRelations) {
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(CreateStudents(db->get()).ok());
  ASSERT_TRUE((*db)
                  ->CreateRelation("enrollment",
                                   Schema::OfStrings(
                                       {"Student", "Course", "Semester"}),
                                   {0, 1, 2})
                  .ok());
  EXPECT_EQ((*db)->ListRelations(),
            (std::vector<std::string>{"enrollment", "students"}));
  ASSERT_TRUE((*db)->Insert("enrollment", Scb("s1", "c1", "t1")).ok());
  ASSERT_TRUE((*db)->Insert("students", Scb("s1", "c1", "b1")).ok());
  EXPECT_EQ((*(*db)->Scan("enrollment")).size(), 1u);
  EXPECT_EQ((*(*db)->Scan("students")).size(), 1u);
}

TEST_F(DatabaseTest, RandomWorkloadSurvivesReopen) {
  Rng rng(321);
  Schema schema = Schema::OfStrings({"A", "B", "C"});
  FlatRelation reference(schema);
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRelation("r", schema, {2, 1, 0}).ok());
    for (int i = 0; i < 80; ++i) {
      FlatTuple t{V(StrCat("a", rng.NextBelow(5)).c_str()),
                  V(StrCat("b", rng.NextBelow(5)).c_str()),
                  V(StrCat("c", rng.NextBelow(5)).c_str())};
      if (rng.NextBool(0.7)) {
        Status s = (*db)->Insert("r", t);
        if (s.ok()) reference.Insert(t);
      } else {
        Status s = (*db)->Delete("r", t);
        if (s.ok()) reference.Erase(t);
      }
    }
  }
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  Result<FlatRelation> scan = (*db)->Scan("r");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(*scan, reference);
  // And the stored NFR is canonical.
  Result<const NfrRelation*> rel = (*db)->Relation("r");
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE((*rel)->EqualsAsSet(CanonicalForm(reference, {2, 1, 0})));
}

// ---- Incremental checkpoints (DESIGN.md §12) --------------------------

TEST_F(DatabaseTest, SecondCheckpointWithSmallWriteSetSkipsPages) {
  Database::Options opts;
  opts.enforce_fds = false;
  auto db = Database::Open(dir_, opts);
  ASSERT_TRUE(db.ok());
  Schema schema = Schema::OfStrings({"K", "P"});
  ASSERT_TRUE((*db)->CreateRelation("big", schema, {0, 1}).ok());
  // Enough rows for a multi-page table file. Distinct payloads, so the
  // canonical form cannot compose rows into one giant value set (which
  // would collapse the table to a single page).
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(
        (*db)->Insert("big",
                      FlatTuple{V(StrCat("k", i).c_str()),
                                V(StrCat("p", i, "_", std::string(150, 'p'))
                                      .c_str())})
            .ok());
  }
  ASSERT_TRUE((*db)->Checkpoint().ok());
  // A small write-set against a big table: the second checkpoint must
  // rewrite only the touched pages, skipping the rest.
  ASSERT_TRUE(
      (*db)->Insert("big", FlatTuple{V("late"), V("row")}).ok());
  uint64_t skipped_before =
      (*db)->MetricsSnapshot().counter("nf2_checkpoint_pages_skipped_total");
  uint64_t written_before =
      (*db)->MetricsSnapshot().counter("nf2_checkpoint_pages_written_total");
  ASSERT_TRUE((*db)->Checkpoint().ok());
  auto snap = (*db)->MetricsSnapshot();
  uint64_t skipped =
      snap.counter("nf2_checkpoint_pages_skipped_total") - skipped_before;
  uint64_t written =
      snap.counter("nf2_checkpoint_pages_written_total") - written_before;
  EXPECT_GT(skipped, 0u) << "incremental checkpoint rewrote everything";
  EXPECT_GT(written, 0u) << "the dirty page must still be written";
  EXPECT_LT(written, skipped)
      << "a one-row write-set should dirty fewer pages than it skips";
  // And the incremental state is exactly what recovery reproduces.
  db->reset();
  auto reopened = Database::Open(dir_, opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  Result<FlatRelation> scan = (*reopened)->Scan("big");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), 151u);
  EXPECT_TRUE((*reopened)->VerifyIntegrity().ok());
}

TEST_F(DatabaseTest, CleanRelationsAreSkippedWholesale) {
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(CreateStudents(db->get()).ok());
  ASSERT_TRUE((*db)->Insert("students", Scb("s1", "c1", "b1")).ok());
  ASSERT_TRUE((*db)->Checkpoint().ok());
  uint64_t skipped_before = (*db)->MetricsSnapshot().counter(
      "nf2_checkpoint_tables_skipped_total");
  // Nothing changed: the whole relation is skipped without even a diff.
  ASSERT_TRUE((*db)->Checkpoint().ok());
  EXPECT_GT((*db)->MetricsSnapshot().counter(
                "nf2_checkpoint_tables_skipped_total"),
            skipped_before);
}

TEST_F(DatabaseTest, DropCreateCycleSurvivesStaleManifest) {
  Schema schema = Schema::OfStrings({"K", "P"});
  const std::string crash_dir = dir_ + "_crash_image";
  std::filesystem::remove_all(crash_dir);
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRelation("r", schema, {0, 1}).ok());
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE((*db)->Insert("r", FlatTuple{V(StrCat("k", i).c_str()),
                                               V("v")})
                      .ok());
    }
    // Manifest now maps r.tbl's pages.
    ASSERT_TRUE((*db)->Checkpoint().ok());
    // Replace the file identity underneath that mapping.
    ASSERT_TRUE((*db)->DropRelation("r").ok());
    ASSERT_TRUE((*db)->CreateRelation("r", schema, {0, 1}).ok());
    ASSERT_TRUE((*db)->Insert("r", FlatTuple{V("fresh"), V("row")}).ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          (*db)->Insert("r", FlatTuple{V(StrCat("f", i).c_str()), V("x")})
              .ok());
    }
    // Photograph the directory BEFORE the clean-close checkpoint
    // refreshes the manifest: the image has the old file's mapping in
    // MANIFEST.nf2 but the fresh flat r.tbl on disk — exactly what a
    // crash between DROP/CREATE and the next checkpoint leaves.
    std::filesystem::copy(dir_, crash_dir,
                          std::filesystem::copy_options::recursive);
  }
  // Recovery must notice the identity-stamp mismatch, ignore the stale
  // mapping, and read the new flat file (then replay the WAL).
  auto db = Database::Open(crash_dir);
  ASSERT_TRUE(db.ok()) << db.status();
  Result<FlatRelation> scan = (*db)->Scan("r");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), 4u);
  EXPECT_TRUE((*db)->VerifyIntegrity().ok());
  db->reset();
  std::filesystem::remove_all(crash_dir);
}

TEST_F(DatabaseTest, CorruptManifestFailsRecoveryClosed) {
  std::string manifest_path;
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(CreateStudents(db->get()).ok());
    ASSERT_TRUE((*db)->Insert("students", Scb("s1", "c1", "b1")).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
    manifest_path =
        (std::filesystem::path(dir_) / "MANIFEST.nf2").string();
    ASSERT_TRUE(std::filesystem::exists(manifest_path));
  }
  // Flip one byte of the manifest: recovery must refuse to guess a
  // page mapping (fail closed), not silently load mixed pages.
  Result<std::string> bytes =
      Env::Default()->ReadFileToString(manifest_path);
  ASSERT_TRUE(bytes.ok());
  std::string mutated = *bytes;
  mutated[mutated.size() / 2] ^= 0x01;
  ASSERT_TRUE(
      Env::Default()->WriteFileAtomic(manifest_path, mutated).ok());
  auto db = Database::Open(dir_);
  EXPECT_EQ(db.status().code(), StatusCode::kCorruption);
}

TEST_F(DatabaseTest, DeletedManifestFallsBackToFlatReads) {
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(CreateStudents(db->get()).ok());
    ASSERT_TRUE((*db)->Insert("students", Scb("s1", "c1", "b1")).ok());
    ASSERT_TRUE((*db)->Insert("students", Scb("s2", "c2", "b2")).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  // An operator removing MANIFEST.nf2 (or a pre-manifest database)
  // must still open: after a CLEAN checkpoint every table file is
  // flat-readable — shadow slots only accumulate between checkpoints
  // of an already-mapped file, and those require the manifest that
  // mapped them to still exist.
  //
  // NOTE: this guarantee is for the FIRST checkpoint only (which
  // writes whole files). After later incremental checkpoints the flat
  // fallback may see both old and new versions of a page — which the
  // canonical-form verification at recovery then rejects rather than
  // serves. Deleting the manifest is not a supported operation; this
  // test pins the pre-manifest compatibility path.
  ASSERT_TRUE(std::filesystem::remove(
      std::filesystem::path(dir_) / "MANIFEST.nf2"));
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok()) << db.status();
  Result<FlatRelation> scan = (*db)->Scan("students");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), 2u);
}

}  // namespace
}  // namespace nf2
