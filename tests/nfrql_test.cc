#include <gtest/gtest.h>

#include <filesystem>

#include "nfrql/executor.h"
#include "nfrql/lexer.h"
#include "nfrql/parser.h"
#include "util/string_util.h"

namespace nf2 {
namespace {

TEST(LexerTest, BasicTokens) {
  Result<std::vector<Token>> tokens =
      Lex("SELECT * FROM r WHERE a = 'x1' AND b >= 3;");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> types;
  for (const Token& t : *tokens) types.push_back(t.type);
  EXPECT_EQ(types,
            (std::vector<TokenType>{
                TokenType::kIdentifier, TokenType::kStar,
                TokenType::kIdentifier, TokenType::kIdentifier,
                TokenType::kIdentifier, TokenType::kIdentifier,
                TokenType::kEq, TokenType::kString, TokenType::kIdentifier,
                TokenType::kIdentifier, TokenType::kGe, TokenType::kInteger,
                TokenType::kSemicolon, TokenType::kEnd}));
}

TEST(LexerTest, Numbers) {
  Result<std::vector<Token>> tokens = Lex("42 -7 3.5 -0.25");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].int_value, -7);
  EXPECT_DOUBLE_EQ((*tokens)[2].double_value, 3.5);
  EXPECT_DOUBLE_EQ((*tokens)[3].double_value, -0.25);
}

TEST(LexerTest, ArrowsAndComparisons) {
  Result<std::vector<Token>> tokens = Lex("-> ->-> != <= >= < > = |");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenType> types;
  for (const Token& t : *tokens) types.push_back(t.type);
  EXPECT_EQ(types, (std::vector<TokenType>{
                       TokenType::kArrow, TokenType::kDoubleArrow,
                       TokenType::kNe, TokenType::kLe, TokenType::kGe,
                       TokenType::kLt, TokenType::kGt, TokenType::kEq,
                       TokenType::kPipe, TokenType::kEnd}));
}

TEST(LexerTest, QuotedStringsWithEscapes) {
  Result<std::vector<Token>> tokens = Lex("'it''s nested'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "it's nested");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Lex("'unterminated").ok());
  EXPECT_FALSE(Lex("a @ b").ok());
}

TEST(ParserTest, CreateWithEverything) {
  Result<Statement> stmt = ParseStatement(
      "CREATE RELATION students (Student STRING, Course STRING, Club "
      "STRING) NEST Course, Club, Student MVD Student ->-> Course "
      "FD Student -> Club");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& create = std::get<CreateStatement>(*stmt);
  EXPECT_EQ(create.name, "students");
  EXPECT_EQ(create.attributes.size(), 3u);
  EXPECT_EQ(create.nest_order,
            (std::vector<std::string>{"Course", "Club", "Student"}));
  ASSERT_EQ(create.mvds.size(), 1u);
  EXPECT_EQ(create.mvds[0].lhs, (std::vector<std::string>{"Student"}));
  ASSERT_EQ(create.fds.size(), 1u);
  EXPECT_EQ(create.fds[0].rhs, (std::vector<std::string>{"Club"}));
}

TEST(ParserTest, InsertMultiRow) {
  Result<Statement> stmt = ParseStatement(
      "INSERT INTO r VALUES ('a', 1), ('b', 2)");
  ASSERT_TRUE(stmt.ok());
  const auto& insert = std::get<InsertStatement>(*stmt);
  ASSERT_EQ(insert.rows.size(), 2u);
  EXPECT_EQ(insert.rows[0][0], Value::String("a"));
  EXPECT_EQ(insert.rows[1][1], Value::Int(2));
}

TEST(ParserTest, BareIdentifiersAsLiterals) {
  Result<Statement> stmt = ParseStatement("INSERT INTO r VALUES (s1, c1)");
  ASSERT_TRUE(stmt.ok());
  const auto& insert = std::get<InsertStatement>(*stmt);
  EXPECT_EQ(insert.rows[0][0], Value::String("s1"));
}

TEST(ParserTest, SelectWithCondition) {
  Result<Statement> stmt = ParseStatement(
      "SELECT a, b FROM r WHERE (a = x OR b != y) AND NOT c < 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const auto& select = std::get<SelectStatement>(*stmt);
  EXPECT_EQ(select.columns, (std::vector<std::string>{"a", "b"}));
  ASSERT_NE(select.where, nullptr);
  EXPECT_EQ(select.where->kind, ConditionNode::Kind::kAnd);
  EXPECT_EQ(select.where->left->kind, ConditionNode::Kind::kOr);
  EXPECT_EQ(select.where->right->kind, ConditionNode::Kind::kNot);
}

TEST(ParserTest, DeleteForms) {
  Result<Statement> by_values =
      ParseStatement("DELETE FROM r VALUES (a, b)");
  ASSERT_TRUE(by_values.ok());
  EXPECT_EQ(std::get<DeleteStatement>(*by_values).rows.size(), 1u);
  Result<Statement> by_where =
      ParseStatement("DELETE FROM r WHERE a = x");
  ASSERT_TRUE(by_where.ok());
  EXPECT_NE(std::get<DeleteStatement>(*by_where).where, nullptr);
  EXPECT_FALSE(ParseStatement("DELETE FROM r").ok());
}

TEST(ParserTest, SmallStatements) {
  EXPECT_TRUE(std::holds_alternative<ListStatement>(
      *ParseStatement("LIST")));
  EXPECT_TRUE(std::holds_alternative<CheckpointStatement>(
      *ParseStatement("CHECKPOINT;")));
  EXPECT_TRUE(std::holds_alternative<ShowStatement>(
      *ParseStatement("SHOW r")));
  EXPECT_TRUE(std::holds_alternative<StatsStatement>(
      *ParseStatement("STATS r")));
  EXPECT_TRUE(std::holds_alternative<DropStatement>(
      *ParseStatement("DROP RELATION r")));
  Result<Statement> nest_result = ParseStatement("NEST r ON a, b");
  const auto& nest = std::get<NestStatement>(*nest_result);
  EXPECT_FALSE(nest.unnest);
  EXPECT_EQ(nest.attributes, (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(
      std::get<NestStatement>(*ParseStatement("UNNEST r ON a")).unnest);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseStatement("").ok());
  EXPECT_FALSE(ParseStatement("FROBNICATE r").ok());
  EXPECT_FALSE(ParseStatement("SELECT FROM r").ok());
  EXPECT_FALSE(ParseStatement("CREATE RELATION r").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO r VALUES ()").ok());
  EXPECT_FALSE(ParseStatement("SELECT * FROM r extra junk").ok());
}

TEST(ParserTest, ExplainAndProfile) {
  Result<Statement> explain = ParseStatement("EXPLAIN SELECT * FROM r");
  ASSERT_TRUE(explain.ok()) << explain.status();
  const auto& ex = std::get<ExplainStatement>(*explain);
  EXPECT_FALSE(ex.profile);
  ASSERT_NE(ex.inner, nullptr);
  EXPECT_TRUE(std::holds_alternative<SelectStatement>(ex.inner->stmt));

  Result<Statement> profile =
      ParseStatement("PROFILE INSERT INTO r VALUES (a)");
  ASSERT_TRUE(profile.ok()) << profile.status();
  const auto& pr = std::get<ExplainStatement>(*profile);
  EXPECT_TRUE(pr.profile);
  ASSERT_NE(pr.inner, nullptr);
  EXPECT_TRUE(std::holds_alternative<InsertStatement>(pr.inner->stmt));

  // The prefix applies to exactly one statement; stacking is an error.
  EXPECT_FALSE(ParseStatement("EXPLAIN PROFILE SELECT * FROM r").ok());
  EXPECT_FALSE(ParseStatement("PROFILE EXPLAIN LIST").ok());
  EXPECT_FALSE(ParseStatement("EXPLAIN").ok());
}

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() / "nf2_nfrql_test")
               .string();
    std::filesystem::remove_all(dir_);
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    db_ = *std::move(db);
    executor_ = std::make_unique<Executor>(db_.get());
  }
  void TearDown() override {
    executor_.reset();
    db_.reset();
    std::filesystem::remove_all(dir_);
  }

  std::string Must(const std::string& query) {
    Result<std::string> out = executor_->Execute(query);
    EXPECT_TRUE(out.ok()) << query << " -> " << out.status();
    return out.ok() ? *out : "";
  }

  std::string dir_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(ExecutorTest, EndToEndUniversityScenario) {
  std::string created = Must(
      "CREATE RELATION sc (Student STRING, Course STRING, Club STRING) "
      "MVD Student ->-> Course");
  EXPECT_NE(created.find("created relation sc"), std::string::npos);
  // The advisor nests the MVD LHS (Student) last.
  EXPECT_NE(created.find("Student]"), std::string::npos);

  Must("INSERT INTO sc VALUES (s1, c1, b1), (s1, c2, b1), (s2, c1, b2)");
  std::string select = Must("SELECT * FROM sc WHERE Student = s1");
  EXPECT_NE(select.find("2 row(s)"), std::string::npos);
  EXPECT_NE(select.find("c2"), std::string::npos);

  std::string shown = Must("SHOW sc");
  // s1's two courses are grouped into one NFR tuple.
  EXPECT_NE(shown.find("c1, c2"), std::string::npos);

  std::string stats = Must("STATS sc");
  EXPECT_NE(stats.find("2 NFR tuples"), std::string::npos);

  Must("DELETE FROM sc VALUES (s1, c1, b1)");
  std::string after = Must("SELECT * FROM sc");
  EXPECT_NE(after.find("2 row(s)"), std::string::npos);

  Must("DELETE FROM sc WHERE Student = s2");
  EXPECT_NE(Must("SELECT * FROM sc").find("1 row(s)"), std::string::npos);
}

TEST_F(ExecutorTest, ProjectionAndNestViews) {
  Must("CREATE RELATION r (A STRING, B STRING) NEST A, B");
  Must("INSERT INTO r VALUES (a1, b1), (a2, b1), (a1, b2)");
  std::string projected = Must("SELECT A FROM r");
  EXPECT_NE(projected.find("2 row(s)"), std::string::npos);
  std::string nested = Must("NEST r ON A");
  EXPECT_NE(nested.find("a1, a2"), std::string::npos);
  std::string unnested = Must("UNNEST r ON A");
  EXPECT_NE(unnested.find("NEST"), std::string::npos);
}

TEST_F(ExecutorTest, ListAndCheckpointAndDrop) {
  EXPECT_EQ(Must("LIST"), "no relations");
  Must("CREATE RELATION a (X STRING)");
  Must("CREATE RELATION b (Y STRING)");
  EXPECT_EQ(Must("LIST"), "a\nb");
  EXPECT_EQ(Must("CHECKPOINT"), "checkpoint complete");
  Must("DROP RELATION a");
  EXPECT_EQ(Must("LIST"), "b");
}

TEST_F(ExecutorTest, ErrorsSurfaceCleanly) {
  EXPECT_FALSE(executor_->Execute("SELECT * FROM missing").ok());
  Must("CREATE RELATION r (A STRING)");
  EXPECT_FALSE(executor_->Execute("INSERT INTO r VALUES (x, y)").ok());
  EXPECT_FALSE(
      executor_->Execute("SELECT * FROM r WHERE Nope = 1").ok());
  EXPECT_FALSE(executor_->Execute("CREATE RELATION r (A BADTYPE)").ok());
  EXPECT_FALSE(executor_->Execute("garbage !!").ok());
}

TEST_F(ExecutorTest, DescribeStatement) {
  Must("CREATE RELATION r1 (Student STRING, Course STRING, Club STRING) "
       "MVD Student ->-> Course FD Student -> Club");
  Must("INSERT INTO r1 VALUES (s1, c1, b1), (s1, c2, b1)");
  std::string out = Must("DESCRIBE r1");
  EXPECT_NE(out.find("relation  : r1"), std::string::npos);
  EXPECT_NE(out.find("nest order:"), std::string::npos);
  EXPECT_NE(out.find("{Student}->{Club}"), std::string::npos);
  EXPECT_NE(out.find("->->"), std::string::npos);
  EXPECT_NE(out.find("|R*|=2"), std::string::npos);
  EXPECT_FALSE(executor_->Execute("DESCRIBE missing").ok());
}

TEST_F(ExecutorTest, GroupByCount) {
  Must("CREATE RELATION takes (Student STRING, Course STRING) "
       "NEST Course, Student");
  Must("INSERT INTO takes VALUES (ada, algebra), (ada, calculus), "
       "(ada, crypto), (bob, algebra), (eve, crypto), (eve, algebra)");
  std::string out =
      Must("SELECT Student, COUNT(Course) FROM takes GROUP BY Student");
  EXPECT_NE(out.find("ada\t3"), std::string::npos);
  EXPECT_NE(out.find("bob\t1"), std::string::npos);
  EXPECT_NE(out.find("eve\t2"), std::string::npos);
  EXPECT_NE(out.find("3 group(s)"), std::string::npos);
  // With a WHERE filter.
  std::string filtered = Must(
      "SELECT Student, COUNT(Course) FROM takes WHERE Course != crypto "
      "GROUP BY Student");
  EXPECT_NE(filtered.find("ada\t2"), std::string::npos);
  EXPECT_NE(filtered.find("eve\t1"), std::string::npos);
  // Errors: mismatched GROUP BY attribute; joins unsupported.
  EXPECT_FALSE(executor_
                   ->Execute("SELECT Student, COUNT(Course) FROM takes "
                             "GROUP BY Course")
                   .ok());
  EXPECT_FALSE(executor_
                   ->Execute("SELECT Student, COUNT(Course) FROM takes")
                   .ok());
}

TEST_F(ExecutorTest, UpdateStatement) {
  Must("CREATE RELATION emp (Name STRING, Dept STRING, Level INT)");
  Must("INSERT INTO emp VALUES (ada, cs, 3), (bob, cs, 2), "
       "(eve, math, 3)");
  std::string out = Must("UPDATE emp SET Dept = eng WHERE Name = ada");
  EXPECT_NE(out.find("updated 1 tuple(s)"), std::string::npos);
  EXPECT_NE(Must("SELECT * FROM emp WHERE Dept = eng").find("ada"),
            std::string::npos);
  // Multi-attribute SET, multi-row WHERE.
  Must("UPDATE emp SET Dept = ops, Level = 1 WHERE Level = 3");
  EXPECT_EQ(Must("SELECT COUNT(*) FROM emp WHERE Dept = ops"), "2");
  // No WHERE touches every tuple.
  Must("UPDATE emp SET Level = 9");
  EXPECT_EQ(Must("SELECT COUNT(*) FROM emp WHERE Level = 9"), "3");
  // Merging rewrite: two rows collapse into one.
  Must("UPDATE emp SET Name = anon, Dept = x WHERE Dept = ops");
  EXPECT_EQ(Must("SELECT COUNT(*) FROM emp"), "2");
  // Errors.
  EXPECT_FALSE(executor_->Execute("UPDATE emp SET Nope = 1").ok());
  EXPECT_FALSE(executor_->Execute("UPDATE emp SET").ok());
  EXPECT_FALSE(executor_->Execute("UPDATE missing SET Level = 1").ok());
}

TEST_F(ExecutorTest, JoinAndCount) {
  Must("CREATE RELATION sc (Student STRING, Course STRING)");
  Must("CREATE RELATION ct (Course STRING, Teacher STRING)");
  Must("INSERT INTO sc VALUES (s1, db), (s2, db), (s2, ai)");
  Must("INSERT INTO ct VALUES (db, codd), (ai, mccarthy), (os, unix)");
  std::string joined = Must("SELECT * FROM sc JOIN ct");
  EXPECT_NE(joined.find("3 row(s)"), std::string::npos);
  EXPECT_NE(joined.find("codd"), std::string::npos);
  std::string filtered =
      Must("SELECT Student FROM sc JOIN ct WHERE Teacher = codd");
  EXPECT_NE(filtered.find("2 row(s)"), std::string::npos);
  EXPECT_EQ(Must("SELECT COUNT(*) FROM sc"), "3");
  EXPECT_EQ(Must("SELECT COUNT(*) FROM sc JOIN ct WHERE Teacher = codd"),
            "2");
  EXPECT_EQ(Must("SELECT COUNT(*) FROM sc WHERE Student = s2"), "2");
  // Parse errors.
  EXPECT_FALSE(executor_->Execute("SELECT COUNT( FROM sc").ok());
  EXPECT_FALSE(executor_->Execute("SELECT * FROM sc JOIN").ok());
  // Unknown relation in the join list.
  EXPECT_FALSE(executor_->Execute("SELECT * FROM sc JOIN nope").ok());
}

TEST_F(ExecutorTest, TransactionStatements) {
  Must("CREATE RELATION t (A STRING)");
  EXPECT_EQ(Must("BEGIN"), "transaction started");
  Must("INSERT INTO t VALUES (x)");
  EXPECT_EQ(Must("ROLLBACK"), "transaction rolled back");
  EXPECT_NE(Must("SELECT * FROM t").find("0 row(s)"), std::string::npos);
  EXPECT_EQ(Must("BEGIN"), "transaction started");
  Must("INSERT INTO t VALUES (y)");
  EXPECT_EQ(Must("COMMIT"), "transaction committed");
  EXPECT_NE(Must("SELECT * FROM t").find("1 row(s)"), std::string::npos);
  // Stray commit errors.
  EXPECT_FALSE(executor_->Execute("COMMIT").ok());
}

TEST_F(ExecutorTest, TypedColumns) {
  Must("CREATE RELATION t (Name STRING, Age INT, Score DOUBLE)");
  Must("INSERT INTO t VALUES ('ann', 31, 9.5), ('bob', 25, 7.25)");
  std::string young = Must("SELECT Name FROM t WHERE Age < 30");
  EXPECT_NE(young.find("bob"), std::string::npos);
  EXPECT_EQ(young.find("ann"), std::string::npos);
}

TEST_F(ExecutorTest, ExplainGoldenPlans) {
  Must("CREATE RELATION r (A STRING, B STRING) NEST A, B");
  // EXPLAIN renders the static plan with kPlanOnly (no wall times), so
  // these are exact goldens.
  EXPECT_EQ(Must("EXPLAIN INSERT INTO r VALUES (a1, b1)"),
            "EXPLAIN\n"
            "insert(r) rows_in=1\n"
            "└─ recons\n");
  EXPECT_EQ(Must("EXPLAIN SELECT A FROM r WHERE A = a1"),
            "EXPLAIN\n"
            "select(r)\n"
            "└─ project(A)\n"
            "   └─ index_scan(r: A = a1)\n");
  EXPECT_EQ(Must("EXPLAIN DELETE FROM r WHERE A = a1"),
            "EXPLAIN\n"
            "delete(r)\n"
            "├─ filter(r)\n"
            "└─ recons\n");
  EXPECT_EQ(Must("EXPLAIN SELECT * FROM r"),
            "EXPLAIN\n"
            "select(r)\n"
            "└─ scan(r)\n");
  // EXPLAIN never executes the statement: r stays empty.
  EXPECT_NE(Must("SELECT * FROM r").find("0 row(s)"), std::string::npos);
}

TEST_F(ExecutorTest, ProfileRendersSpansWithTimes) {
  Must("CREATE RELATION r (A STRING, B STRING) NEST A, B");
  Must("INSERT INTO r VALUES (a1, b1), (a2, b1)");
  std::string out = Must("PROFILE SELECT * FROM r WHERE A = a1");
  // Result first, then the span tree with bracketed durations and
  // per-operator row counts.
  EXPECT_NE(out.find("1 row(s)"), std::string::npos);
  EXPECT_NE(out.find("\n\nPROFILE\n"), std::string::npos);
  EXPECT_NE(out.find("select(r) ["), std::string::npos);
  EXPECT_NE(out.find("index_scan(r: A = a1) ["), std::string::npos);
  EXPECT_NE(out.find("rows_out=1"), std::string::npos);
  // Statements without dedicated instrumentation still profile as a
  // single labeled span.
  EXPECT_NE(Must("PROFILE LIST").find("PROFILE\nlist"), std::string::npos);
}

TEST_F(ExecutorTest, ExplainGoldenPipelineOperators) {
  Must("CREATE RELATION r (A STRING, B STRING) NEST A, B");
  Must("CREATE RELATION ct (B STRING, C STRING) NEST B, C");
  // Equality conjuncts route through one index scan; the non-eq
  // residue becomes a filter above it.
  EXPECT_EQ(Must("EXPLAIN SELECT * FROM r WHERE A = a1 AND B != b9"),
            "EXPLAIN\n"
            "select(r)\n"
            "└─ filter(r)\n"
            "   └─ index_scan(r: A = a1)\n");
  // Factorized aggregation never expands R*: the aggregate reads the
  // NFR source directly.
  EXPECT_EQ(Must("EXPLAIN SELECT COUNT(*) FROM r"),
            "EXPLAIN\n"
            "select(r)\n"
            "└─ nfr_aggregate(COUNT(*))\n"
            "   └─ nfr_scan(r)\n");
  EXPECT_EQ(Must("EXPLAIN SELECT COUNT(*) FROM r WHERE A = a1"),
            "EXPLAIN\n"
            "select(r)\n"
            "└─ nfr_aggregate(COUNT(*))\n"
            "   └─ nfr_index_scan(r: A = a1)\n");
  // GROUP BY with ORDER BY an aggregate label, capped by LIMIT.
  EXPECT_EQ(Must("EXPLAIN SELECT A, COUNT(B) FROM r GROUP BY A "
                 "ORDER BY COUNT(B) DESC LIMIT 2"),
            "EXPLAIN\n"
            "select(r)\n"
            "└─ limit(2)\n"
            "   └─ sort(COUNT(B) desc)\n"
            "      └─ nfr_aggregate(A: COUNT(B))\n"
            "         └─ nfr_scan(r)\n");
  // Joins hash-build the right side; the WHERE resolves on top of the
  // joined schema.
  EXPECT_EQ(Must("EXPLAIN SELECT * FROM r JOIN ct WHERE C = c1"),
            "EXPLAIN\n"
            "select(r)\n"
            "└─ filter\n"
            "   └─ join(ct)\n"
            "      ├─ scan(r)\n"
            "      └─ scan(ct)\n");
  // A residual (non-equality) predicate forces aggregation onto the
  // row pipeline.
  EXPECT_EQ(Must("EXPLAIN SELECT COUNT(*) FROM r WHERE A != a1"),
            "EXPLAIN\n"
            "select(r)\n"
            "└─ aggregate(COUNT(*))\n"
            "   └─ filter(r)\n"
            "      └─ scan(r)\n");
}

TEST_F(ExecutorTest, AggregateFunctions) {
  Must("CREATE RELATION emp (Name STRING, Dept STRING, Sal INT)");
  Must("INSERT INTO emp VALUES (ada, cs, 120), (bob, cs, 80), "
       "(eve, math, 100)");
  EXPECT_EQ(Must("SELECT SUM(Sal) FROM emp"), "300");
  EXPECT_EQ(Must("SELECT MIN(Sal) FROM emp"), "80");
  EXPECT_EQ(Must("SELECT MAX(Sal) FROM emp"), "120");
  // COUNT(attr) counts distinct values (set semantics).
  EXPECT_EQ(Must("SELECT COUNT(Dept) FROM emp"), "2");
  EXPECT_EQ(Must("SELECT COUNT(*), SUM(Sal), MIN(Name) FROM emp"),
            "3\t300\tada");
  // Grouped, multiple aggregates.
  std::string grouped =
      Must("SELECT Dept, COUNT(*), SUM(Sal) FROM emp GROUP BY Dept");
  EXPECT_NE(grouped.find("cs\t2\t200"), std::string::npos);
  EXPECT_NE(grouped.find("math\t1\t100"), std::string::npos);
  EXPECT_NE(grouped.find("2 group(s)"), std::string::npos);
  // Index-backed restriction under an aggregate.
  EXPECT_EQ(Must("SELECT SUM(Sal) FROM emp WHERE Dept = cs"), "200");
  // SUM requires a numeric attribute (caught at plan time).
  EXPECT_FALSE(executor_->Execute("SELECT SUM(Name) FROM emp").ok());
}

TEST_F(ExecutorTest, OrderByAndLimit) {
  Must("CREATE RELATION t (Name STRING, Age INT)");
  Must("INSERT INTO t VALUES (ada, 36), (bob, 25), (eve, 31)");
  // Rows render in sort order, not the relation's canonical order.
  std::string out = Must("SELECT * FROM t ORDER BY Age DESC");
  EXPECT_NE(out.find("3 row(s)"), std::string::npos);
  EXPECT_LT(out.find("ada"), out.find("eve"));
  EXPECT_LT(out.find("eve"), out.find("bob"));
  std::string top = Must("SELECT Name FROM t ORDER BY Age LIMIT 1");
  EXPECT_NE(top.find("bob"), std::string::npos);
  EXPECT_EQ(top.find("ada"), std::string::npos);
  EXPECT_NE(top.find("1 row(s)"), std::string::npos);
  // LIMIT without ORDER BY caps the pipeline.
  EXPECT_NE(Must("SELECT * FROM t LIMIT 2").find("2 row(s)"),
            std::string::npos);
  // ORDER BY an aggregate orders the group rows.
  std::string grouped = Must("SELECT Name, COUNT(Age) FROM t "
                             "GROUP BY Name ORDER BY Name DESC");
  EXPECT_LT(grouped.find("eve"), grouped.find("bob"));
  EXPECT_FALSE(executor_->Execute("SELECT * FROM t ORDER BY Nope").ok());
}

TEST_F(ExecutorTest, FactorizedAggregationMatchesRowPipeline) {
  Must("CREATE RELATION sc (Student STRING, Course STRING) "
       "NEST Course, Student");
  Must("INSERT INTO sc VALUES (s1, c1), (s1, c2), (s2, c1), (s2, c2), "
       "(s3, c3)");
  // Factorized (no residual) and row-based (the != residual forces the
  // row pipeline) answers must agree.
  EXPECT_EQ(Must("SELECT COUNT(*) FROM sc"), "5");
  EXPECT_EQ(Must("SELECT COUNT(*) FROM sc WHERE Student != zzz"), "5");
  std::string factorized =
      Must("SELECT Student, COUNT(Course) FROM sc GROUP BY Student");
  std::string row_based = Must(
      "SELECT Student, COUNT(Course) FROM sc WHERE Course != zzz "
      "GROUP BY Student");
  EXPECT_EQ(factorized, row_based);
  // The factorized source borrows the stored NFR by reference: PROFILE
  // pins that no copy was materialized for the unrestricted aggregate.
  std::string profiled = Must("PROFILE SELECT COUNT(*) FROM sc");
  EXPECT_NE(profiled.find("nfr_scan(sc)"), std::string::npos);
  EXPECT_NE(profiled.find("materialized=0"), std::string::npos);
}

// Regression: a rewrite whose re-insert is rejected (here an FD
// violation) used to delete the original tuple and surface only the
// error — the row silently vanished. The executor must restore it.
TEST_F(ExecutorTest, UpdateFailureRestoresOriginalTuple) {
  Must("CREATE RELATION emp (Name STRING, Dept STRING) FD Name -> Dept");
  Must("INSERT INTO emp VALUES (ada, cs), (bob, math)");
  Result<std::string> out =
      executor_->Execute("UPDATE emp SET Name = ada WHERE Dept = math");
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kFailedPrecondition);
  // The original tuple survived the failed rewrite.
  EXPECT_EQ(Must("SELECT COUNT(*) FROM emp"), "2");
  EXPECT_NE(Must("SELECT * FROM emp WHERE Dept = math").find("bob"),
            std::string::npos);
}

// Regression: a DELETE with neither VALUES nor WHERE used to hit an
// NF2_CHECK and abort the process. The parser refuses the form, and a
// hand-built statement (the server protocol path) gets a clean error.
TEST_F(ExecutorTest, DeleteWithoutWhereOrValuesIsRejected) {
  Must("CREATE RELATION r (A STRING)");
  Must("INSERT INTO r VALUES (x)");
  EXPECT_FALSE(executor_->Execute("DELETE FROM r").ok());
  DeleteStatement del;
  del.name = "r";
  Statement stmt = std::move(del);
  Result<std::string> out = executor_->Execute(stmt);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(Must("SELECT * FROM r").find("1 row(s)"), std::string::npos);
}

// A SELECT planned against a pinned snapshot must not observe writes
// committed after the pin — including on the index-backed path, where
// literals resolve against the snapshot's frozen dictionary.
TEST_F(ExecutorTest, SnapshotBoundSelectIsStable) {
  Must("CREATE RELATION r (A STRING, B STRING) NEST A, B");
  Must("INSERT INTO r VALUES (a1, b1), (a2, b2)");
  std::shared_ptr<const DatabaseSnapshot> snap = db_->PinSnapshot();
  executor_->BindSnapshot(snap);
  EXPECT_EQ(Must("SELECT COUNT(*) FROM r WHERE A = a1"), "1");
  // Concurrently committed write: a new match for A = a1 carrying a
  // value the frozen dictionary has never interned.
  ASSERT_TRUE(
      db_->Insert("r", FlatTuple{Value::String("a1"), Value::String("zz")})
          .ok());
  EXPECT_EQ(Must("SELECT COUNT(*) FROM r WHERE A = a1"), "1");
  EXPECT_EQ(Must("SELECT * FROM r WHERE A = a1").find("zz"),
            std::string::npos);
  EXPECT_EQ(Must("SELECT COUNT(*) FROM r WHERE B = zz"), "0");
  executor_->ClearSnapshot();
  EXPECT_EQ(Must("SELECT COUNT(*) FROM r WHERE A = a1"), "2");
  EXPECT_EQ(Must("SELECT COUNT(*) FROM r WHERE B = zz"), "1");
}

// Acceptance pin: the §4 deltas PROFILE reports on the recons span are
// bit-identical to the relation's UpdateStats movement AND to the
// registry counters' movement — three views of one count.
TEST_F(ExecutorTest, ProfileCountsMatchUpdateStatsAndRegistry) {
  Must("CREATE RELATION sc (Student STRING, Course STRING) "
       "NEST Course, Student");
  Result<UpdateStats> before_stats = db_->RelationUpdateStats("sc");
  ASSERT_TRUE(before_stats.ok());
  MetricsSnapshot before = db_->MetricsSnapshot();

  std::string out =
      Must("PROFILE INSERT INTO sc VALUES (s1, c1), (s1, c2), (s2, c1)");
  EXPECT_NE(out.find("insert(sc) ["), std::string::npos);
  EXPECT_NE(out.find("rows_in=3"), std::string::npos);

  Result<UpdateStats> after_stats = db_->RelationUpdateStats("sc");
  ASSERT_TRUE(after_stats.ok());
  UpdateStats delta = *after_stats - *before_stats;
  EXPECT_GT(delta.recons_calls, 0u);
  EXPECT_GT(delta.compositions, 0u);
  EXPECT_NE(out.find(StrCat("compositions=", delta.compositions)),
            std::string::npos);
  EXPECT_NE(out.find(StrCat("decompositions=", delta.decompositions)),
            std::string::npos);
  EXPECT_NE(out.find(StrCat("recons_calls=", delta.recons_calls)),
            std::string::npos);
  EXPECT_NE(out.find(StrCat("candidate_scans=", delta.candidate_scans)),
            std::string::npos);

  MetricsSnapshot after = db_->MetricsSnapshot();
  EXPECT_EQ(after.counter("nf2_compo_total") -
                before.counter("nf2_compo_total"),
            delta.compositions);
  EXPECT_EQ(after.counter("nf2_unnest_total") -
                before.counter("nf2_unnest_total"),
            delta.decompositions);
  EXPECT_EQ(after.counter("nf2_recons_total") -
                before.counter("nf2_recons_total"),
            delta.recons_calls);
  EXPECT_EQ(after.counter("nf2_candt_scans_total") -
                before.counter("nf2_candt_scans_total"),
            delta.candidate_scans);
  // One engine-level insert per row.
  EXPECT_EQ(after.counter("nf2_inserts_total") -
                before.counter("nf2_inserts_total"),
            3u);
}

TEST_F(ExecutorTest, MetricsTextSurfacesEngineCounters) {
  Must("CREATE RELATION r (A STRING, B STRING) NEST A, B");
  Must("INSERT INTO r VALUES (a1, b1)");
  std::string human = db_->MetricsText(/*prometheus=*/false);
  EXPECT_NE(human.find("nf2_wal_appends_total"), std::string::npos);
  EXPECT_NE(human.find("nf2_inserts_total 1"), std::string::npos);
  EXPECT_NE(human.find("nf2_relations 1"), std::string::npos);
  std::string prom = db_->MetricsText(/*prometheus=*/true);
  EXPECT_NE(prom.find("# TYPE nf2_inserts_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE nf2_insert_duration_ns histogram"),
            std::string::npos);
}

}  // namespace
}  // namespace nf2
