#include <gtest/gtest.h>

#include "core/update.h"
#include "tests/test_util.h"

namespace nf2 {
namespace {

FlatTuple Flat2(const char* a, const char* b) {
  return FlatTuple{V(a), V(b)};
}


TEST(CanonicalRelationTest, EmptyStart) {
  CanonicalRelation r(Schema::OfStrings({"A", "B"}), {0, 1});
  EXPECT_EQ(r.size(), 0u);
  EXPECT_FALSE(r.Contains(Flat2("a", "b")));
}

TEST(CanonicalRelationTest, FromFlatMatchesCanonicalForm) {
  Rng rng(1);
  FlatRelation flat = RandomFlatRelation(&rng, 3, 3, 15);
  Permutation perm{2, 0, 1};
  Result<CanonicalRelation> r = CanonicalRelation::FromFlat(flat, perm);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->relation().EqualsAsSet(CanonicalForm(flat, perm)));
}

TEST(CanonicalRelationTest, FromFlatRejectsBadPermutation) {
  FlatRelation flat(Schema::OfStrings({"A", "B"}));
  EXPECT_FALSE(CanonicalRelation::FromFlat(flat, {0}).ok());
  EXPECT_FALSE(CanonicalRelation::FromFlat(flat, {0, 0}).ok());
}

TEST(CanonicalRelationTest, InsertIntoEmpty) {
  CanonicalRelation r(Schema::OfStrings({"A", "B"}), {0, 1});
  ASSERT_TRUE(r.Insert(Flat2("a1", "b1")).ok());
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Flat2("a1", "b1")));
}

TEST(CanonicalRelationTest, InsertMergesIntoGroup) {
  // Nest A first: inserting a second student of the same course joins
  // the existing group.
  CanonicalRelation r(Schema::OfStrings({"A", "B"}), {0, 1});
  ASSERT_TRUE(r.Insert(Flat2("a1", "b1")).ok());
  ASSERT_TRUE(r.Insert(Flat2("a2", "b1")).ok());
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.relation().tuple(0),
            (NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet(V("b1"))}));
}

TEST(CanonicalRelationTest, InsertDuplicateErrors) {
  CanonicalRelation r(Schema::OfStrings({"A", "B"}), {0, 1});
  ASSERT_TRUE(r.Insert(Flat2("a1", "b1")).ok());
  Status s = r.Insert(Flat2("a1", "b1"));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(r.size(), 1u);
}

TEST(CanonicalRelationTest, InsertDegreeMismatchErrors) {
  CanonicalRelation r(Schema::OfStrings({"A", "B"}), {0, 1});
  EXPECT_EQ(r.Insert(FlatTuple{V("a")}).code(),
            StatusCode::kInvalidArgument);
}

TEST(CanonicalRelationTest, DeleteMissingErrors) {
  CanonicalRelation r(Schema::OfStrings({"A", "B"}), {0, 1});
  EXPECT_EQ(r.Delete(Flat2("a1", "b1")).code(), StatusCode::kNotFound);
}

TEST(CanonicalRelationTest, InsertThenDeleteRestoresEmpty) {
  CanonicalRelation r(Schema::OfStrings({"A", "B"}), {1, 0});
  ASSERT_TRUE(r.Insert(Flat2("a1", "b1")).ok());
  ASSERT_TRUE(r.Delete(Flat2("a1", "b1")).ok());
  EXPECT_EQ(r.size(), 0u);
}

TEST(CanonicalRelationTest, DeleteSplitsGroup) {
  // [A(a1,a2,a3) B(b1)] minus (a2,b1) -> [A(a1,a3) B(b1)].
  FlatRelation flat = MakeStringRelation(
      {"A", "B"}, {{"a1", "b1"}, {"a2", "b1"}, {"a3", "b1"}});
  Result<CanonicalRelation> r = CanonicalRelation::FromFlat(flat, {0, 1});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  ASSERT_TRUE(r->Delete(Flat2("a2", "b1")).ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(r->relation().tuple(0),
            (NfrTuple{ValueSet{V("a1"), V("a3")}, ValueSet(V("b1"))}));
}

TEST(CanonicalRelationTest, DeleteTriggersRemerge) {
  // R* = {(a1,b1),(a1,b2),(a2,b1)}; canonical nest A-first:
  //   [A(a1) B(... wait: nest A first groups by B: b1->{a1,a2},
  //   b2->{a1}] = {[A(a1,a2) B(b1)], [A(a1) B(b2)]}.
  // Deleting (a2,b1) leaves groups b1->{a1}, b2->{a1}; nesting B then
  // merges them into [A(a1) B(b1,b2)].
  FlatRelation flat = MakeStringRelation(
      {"A", "B"}, {{"a1", "b1"}, {"a1", "b2"}, {"a2", "b1"}});
  Result<CanonicalRelation> r = CanonicalRelation::FromFlat(flat, {0, 1});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->Delete(Flat2("a2", "b1")).ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(r->relation().tuple(0),
            (NfrTuple{ValueSet(V("a1")), ValueSet{V("b1"), V("b2")}}));
}

TEST(CanonicalRelationTest, InsertTriggersCascadedMerge) {
  // Mirror image of DeleteTriggersRemerge: inserting the bridging tuple
  // splits a group and re-merges at a later nest level.
  FlatRelation flat = MakeStringRelation(
      {"A", "B"}, {{"a1", "b1"}, {"a1", "b2"}});
  Result<CanonicalRelation> r = CanonicalRelation::FromFlat(flat, {0, 1});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);  // [A(a1) B(b1,b2)].
  ASSERT_TRUE(r->Insert(Flat2("a2", "b1")).ok());
  NfrRelation expected(flat.schema());
  expected.Add(NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet(V("b1"))});
  expected.Add(NfrTuple{ValueSet(V("a1")), ValueSet(V("b2"))});
  EXPECT_TRUE(r->relation().EqualsAsSet(expected))
      << r->relation().ToString();
}

TEST(CanonicalRelationTest, StatsAccumulate) {
  CanonicalRelation r(Schema::OfStrings({"A", "B"}), {0, 1});
  ASSERT_TRUE(r.Insert(Flat2("a1", "b1")).ok());
  ASSERT_TRUE(r.Insert(Flat2("a2", "b1")).ok());
  EXPECT_GT(r.stats().recons_calls, 0u);
  EXPECT_GT(r.stats().compositions, 0u);
  UpdateStats before = r.stats();
  ASSERT_TRUE(r.Insert(Flat2("a3", "b1")).ok());
  UpdateStats delta = r.stats() - before;
  EXPECT_GE(delta.compositions, 1u);
}

TEST(CanonicalRelationTest, UpdateStatsToString) {
  UpdateStats s;
  s.compositions = 3;
  EXPECT_NE(s.ToString().find("compositions=3"), std::string::npos);
  s.Reset();
  EXPECT_EQ(s.compositions, 0u);
}

// ---- The paper's central claim, fuzzed --------------------------------
//
// After every Insert/Delete, the maintained relation must equal the
// canonical form of R* +/- t recomputed from scratch (V_P(R* + r) in
// §4.2). Parameterized over seeds; each seed drives a random workload
// over a random permutation.
class UpdateOracleTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(UpdateOracleTest, RandomWorkloadMatchesNestFromScratch) {
  auto [seed, degree] = GetParam();
  Rng rng(seed);
  std::vector<std::string> names;
  for (size_t i = 0; i < degree; ++i) names.push_back(StrCat("E", i + 1));
  Schema schema = Schema::OfStrings(names);

  Permutation perm = IdentityPermutation(degree);
  rng.Shuffle(&perm);

  CanonicalRelation maintained(schema, perm);
  FlatRelation reference(schema);

  const size_t domain = 3;
  auto random_tuple = [&]() {
    std::vector<Value> values;
    for (size_t i = 0; i < degree; ++i) {
      values.push_back(
          Value::String(StrCat("v", i, "_", rng.NextBelow(domain))));
    }
    return FlatTuple(std::move(values));
  };

  for (int step = 0; step < 60; ++step) {
    FlatTuple t = random_tuple();
    bool do_insert = rng.NextBool(0.65) || reference.empty();
    if (do_insert) {
      Status s = maintained.Insert(t);
      if (reference.Contains(t)) {
        EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
      } else {
        ASSERT_TRUE(s.ok()) << s << " inserting " << t.ToString();
        reference.Insert(t);
      }
    } else {
      // Delete a tuple actually present half the time.
      if (!reference.empty() && rng.NextBool(0.8)) {
        t = reference.tuple(rng.NextBelow(reference.size()));
      }
      Status s = maintained.Delete(t);
      if (reference.Contains(t)) {
        ASSERT_TRUE(s.ok()) << s << " deleting " << t.ToString();
        reference.Erase(t);
      } else {
        EXPECT_EQ(s.code(), StatusCode::kNotFound);
      }
    }
    NfrRelation oracle = CanonicalForm(reference, perm);
    ASSERT_TRUE(maintained.relation().EqualsAsSet(oracle))
        << "step " << step << " after "
        << (do_insert ? "insert " : "delete ") << t.ToString()
        << "\nmaintained:\n" << maintained.relation().ToString()
        << "oracle:\n" << oracle.ToString();
    ASSERT_TRUE(maintained.relation().Validate().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, UpdateOracleTest,
    ::testing::Combine(::testing::Range<uint64_t>(0, 12),
                       ::testing::Values<size_t>(2, 3, 4)));

// ---- Lemma A-1: at most one candidate tuple per attribute -------------
//
// Re-derives the candidate condition from its definition and counts
// candidates on random canonical relations: for every simple tuple t
// and every nest position m there is at most one tuple s that agrees
// exactly with t on earlier-nested attributes, covers it on
// later-nested ones, and is disjoint on the m-th.
class LemmaA1Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LemmaA1Test, AtMostOneCandidatePerPosition) {
  Rng rng(GetParam());
  FlatRelation flat = RandomFlatRelation(&rng, 3, 3, 15);
  Permutation perm = IdentityPermutation(3);
  rng.Shuffle(&perm);
  NfrRelation canonical = CanonicalForm(flat, perm);
  for (int probe = 0; probe < 20; ++probe) {
    FlatTuple t{V(StrCat("v0_", rng.NextBelow(4)).c_str()),
                V(StrCat("v1_", rng.NextBelow(4)).c_str()),
                V(StrCat("v2_", rng.NextBelow(4)).c_str())};
    if (canonical.ExpansionContains(t)) continue;
    NfrTuple nfr_t = NfrTuple::FromFlat(t);
    for (size_t m = 0; m < 3; ++m) {
      int candidates = 0;
      for (const NfrTuple& s : canonical.tuples()) {
        bool match = true;
        for (size_t k = 0; k < 3 && match; ++k) {
          size_t attr = perm[k];
          if (k < m) {
            match = s.at(attr) == nfr_t.at(attr);
          } else if (k == m) {
            match = s.at(attr).IsDisjointFrom(nfr_t.at(attr));
          } else {
            match = nfr_t.at(attr).IsSubsetOf(s.at(attr));
          }
        }
        candidates += match;
      }
      EXPECT_LE(candidates, 1)
          << "Lemma A-1 violated at position " << m << " for "
          << t.ToString() << "\n"
          << canonical.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LemmaA1Test,
                         ::testing::Range<uint64_t>(0, 20));

// ---- Theorem A-4: composition count independent of |R| ---------------
TEST(UpdateComplexityTest, CompositionCountIndependentOfRelationSize) {
  // Build canonical relations of widely different sizes and compare the
  // per-operation composition counts; Theorem A-4 says they depend on
  // the degree only. We use a key-like first attribute so the relation
  // grows linearly.
  Schema schema = Schema::OfStrings({"K", "X", "Y"});
  Permutation perm{2, 1, 0};  // Nest the non-key attributes first.
  std::vector<uint64_t> per_op_compositions;
  for (size_t n : {50u, 500u, 5000u}) {
    CanonicalRelation r(schema, perm);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(r.Insert(FlatTuple{V(StrCat("k", i).c_str()),
                                     V(StrCat("x", i % 7).c_str()),
                                     V(StrCat("y", i % 5).c_str())})
                      .ok());
    }
    UpdateStats before = r.stats();
    for (size_t i = 0; i < 20; ++i) {
      ASSERT_TRUE(r.Insert(FlatTuple{V(StrCat("nk", i).c_str()),
                                     V("x1"), V("y1")})
                      .ok());
    }
    per_op_compositions.push_back(
        (r.stats() - before).compositions);
  }
  // Identical workload shape => identical composition counts at every
  // relation size.
  EXPECT_EQ(per_op_compositions[0], per_op_compositions[1]);
  EXPECT_EQ(per_op_compositions[1], per_op_compositions[2]);
}

TEST(UpdateComplexityTest, RebuildBaselinesAgreeWithIncremental) {
  Rng rng(99);
  FlatRelation flat = RandomFlatRelation(&rng, 3, 3, 20);
  Permutation perm{1, 2, 0};
  Result<CanonicalRelation> r = CanonicalRelation::FromFlat(flat, perm);
  ASSERT_TRUE(r.ok());
  FlatTuple extra{V("zz"), V("v1_0"), V("v2_0")};
  if (!flat.Contains(extra)) {
    NfrRelation rebuilt =
        RebuildCanonicalAfterInsert(r->relation(), extra, perm);
    ASSERT_TRUE(r->Insert(extra).ok());
    EXPECT_TRUE(r->relation().EqualsAsSet(rebuilt));
    NfrRelation rebuilt_del =
        RebuildCanonicalAfterDelete(r->relation(), extra, perm);
    ASSERT_TRUE(r->Delete(extra).ok());
    EXPECT_TRUE(r->relation().EqualsAsSet(rebuilt_del));
  }
}

// ---- Figures 1 and 2: the paper's motivating update ------------------
TEST(Fig1Fig2Test, DroppingStudentCourseFromR1AndR2) {
  // R1[Student, Course, Club] has MVD Student ->-> Course | Club, so its
  // natural canonical form keeps one tuple per student. R2[Student,
  // Course, Semester] has no such MVD. Dropping (s1, c1, *) is a simple
  // value removal in R1 but forces a split-and-recompose in R2 — the
  // exact scenario of Fig. 1 -> Fig. 2.
  FlatRelation r1_flat = MakeStringRelation(
      {"Student", "Course", "Club"},
      {{"s1", "c1", "b1"}, {"s1", "c2", "b1"}, {"s1", "c3", "b1"},
       {"s2", "c1", "b2"}, {"s2", "c2", "b2"}, {"s2", "c3", "b2"},
       {"s3", "c1", "b1"}, {"s3", "c2", "b1"}, {"s3", "c3", "b1"}});
  // Nest Course first, then Club, then Student: tuples grouped per
  // student (fixed on Student).
  Result<Permutation> p1 =
      PermutationFromNames(r1_flat.schema(), {"Course", "Club", "Student"});
  ASSERT_TRUE(p1.ok());
  Result<CanonicalRelation> r1 = CanonicalRelation::FromFlat(r1_flat, *p1);
  ASSERT_TRUE(r1.ok());

  // Fig. 2 step in R1: remove value c1 from s1's course set.
  ASSERT_TRUE(r1->Delete(FlatTuple{V("s1"), V("c1"), V("b1")}).ok());
  size_t idx = r1->relation().FindContaining(
      FlatTuple{V("s1"), V("c2"), V("b1")});
  ASSERT_LT(idx, r1->relation().size());
  EXPECT_EQ(r1->relation().tuple(idx).at(1), (ValueSet{V("c2"), V("c3")}));

  // R2 from Fig. 1.
  FlatRelation r2_flat = MakeStringRelation(
      {"Student", "Course", "Semester"},
      {{"s1", "c1", "t1"}, {"s2", "c1", "t1"}, {"s3", "c1", "t1"},
       {"s1", "c2", "t1"}, {"s2", "c2", "t1"}, {"s3", "c2", "t1"},
       {"s1", "c3", "t1"}, {"s3", "c3", "t1"}, {"s2", "c3", "t2"}});
  Result<Permutation> p2 = PermutationFromNames(
      r2_flat.schema(), {"Student", "Course", "Semester"});
  ASSERT_TRUE(p2.ok());
  Result<CanonicalRelation> r2 = CanonicalRelation::FromFlat(r2_flat, *p2);
  ASSERT_TRUE(r2.ok());
  size_t tuples_before = r2->size();

  ASSERT_TRUE(r2->Delete(FlatTuple{V("s1"), V("c1"), V("t1")}).ok());
  // The deletion reshapes R2: (s1,c1,t1) leaves the {s1,s2,s3} x
  // {c1,c2} x {t1} block, which must split — exactly the "complicated
  // operations broke out in R2" of §2.
  EXPECT_EQ(r2->relation().Expand().size(), r2_flat.size() - 1);
  EXPECT_GE(r2->size(), tuples_before);
  NfrRelation oracle = CanonicalForm(r2->relation().Expand(), *p2);
  EXPECT_TRUE(r2->relation().EqualsAsSet(oracle));
}

// ---- Degenerate degree-1 relations -----------------------------------
//
// With a single attribute the indexed FindCandidate has no other
// attribute to seed the candidate id set from: the prefix intersection
// is the empty intersection (the universe), and the fallback must
// consider EVERY stored tuple, not none. Regression coverage for that
// branch in both search modes and both encodings.
class Degree1Test
    : public ::testing::TestWithParam<
          std::pair<CanonicalRelation::SearchMode,
                    CanonicalRelation::Encoding>> {};

TEST_P(Degree1Test, InsertMergesEverythingIntoOneTuple) {
  auto [mode, encoding] = GetParam();
  CanonicalRelation r(Schema::OfStrings({"A"}), {0}, mode, encoding);
  for (const char* v : {"a1", "a2", "a3", "a4", "a5"}) {
    ASSERT_TRUE(r.Insert(FlatTuple{V(v)}).ok());
  }
  // Every insert after the first must find the existing tuple as its
  // candidate (disjoint on the only attribute) and compose into it.
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.relation().tuple(0).at(0),
            (ValueSet{V("a1"), V("a2"), V("a3"), V("a4"), V("a5")}));
  EXPECT_EQ(r.stats().compositions, 4u);

  ASSERT_TRUE(r.Delete(FlatTuple{V("a3")}).ok());
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.relation().tuple(0).at(0),
            (ValueSet{V("a1"), V("a2"), V("a4"), V("a5")}));
  EXPECT_FALSE(r.Contains(FlatTuple{V("a3")}));
  EXPECT_TRUE(r.Contains(FlatTuple{V("a4")}));
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, Degree1Test,
    ::testing::Values(
        std::make_pair(CanonicalRelation::SearchMode::kScan,
                       CanonicalRelation::Encoding::kValue),
        std::make_pair(CanonicalRelation::SearchMode::kScan,
                       CanonicalRelation::Encoding::kInterned),
        std::make_pair(CanonicalRelation::SearchMode::kIndexed,
                       CanonicalRelation::Encoding::kValue),
        std::make_pair(CanonicalRelation::SearchMode::kIndexed,
                       CanonicalRelation::Encoding::kInterned)));

// ---- kValue vs kInterned equivalence ---------------------------------
//
// The interned representation is a pure encoding change: random
// insert/delete streams must produce identical relations AND
// bit-identical algebra counters (compositions, decompositions,
// recons_calls, candidate_scans) in both encodings.
TEST(EncodingEquivalenceTest, RandomStreamsMatchCountersExactly) {
  Rng rng(42);
  for (int round = 0; round < 5; ++round) {
    FlatRelation flat = RandomFlatRelation(&rng, 3, 3, 20);
    Permutation perm{1, 2, 0};
    Result<CanonicalRelation> value_rel = CanonicalRelation::FromFlat(
        flat, perm, CanonicalRelation::SearchMode::kIndexed,
        CanonicalRelation::Encoding::kValue);
    Result<CanonicalRelation> interned_rel = CanonicalRelation::FromFlat(
        flat, perm, CanonicalRelation::SearchMode::kIndexed,
        CanonicalRelation::Encoding::kInterned);
    ASSERT_TRUE(value_rel.ok());
    ASSERT_TRUE(interned_rel.ok());
    for (int op = 0; op < 40; ++op) {
      FlatRelation current = value_rel->relation().Expand();
      bool do_delete = current.size() > 0 && rng.NextBelow(2) == 0;
      FlatTuple t =
          do_delete
              ? current.tuples()[rng.NextBelow(current.size())]
              : RandomFlatRelation(&rng, 3, 3, 1).tuples()[0];
      Status sv = do_delete ? value_rel->Delete(t) : value_rel->Insert(t);
      Status si =
          do_delete ? interned_rel->Delete(t) : interned_rel->Insert(t);
      ASSERT_EQ(sv.code(), si.code()) << t.ToString();
    }
    EXPECT_TRUE(
        value_rel->relation().EqualsAsSet(interned_rel->relation()));
    const UpdateStats& a = value_rel->stats();
    const UpdateStats& b = interned_rel->stats();
    EXPECT_EQ(a.compositions, b.compositions);
    EXPECT_EQ(a.decompositions, b.decompositions);
    EXPECT_EQ(a.recons_calls, b.recons_calls);
    EXPECT_EQ(a.candidate_scans, b.candidate_scans);
  }
}

}  // namespace
}  // namespace nf2
