#include <gtest/gtest.h>

#include <map>
#include <set>

#include "algebra/nest_unnest.h"
#include "algebra/operators.h"
#include "tests/test_util.h"

namespace nf2 {
namespace {

FlatRelation Sample() {
  return MakeStringRelation({"A", "B"}, {{"a1", "b1"},
                                         {"a1", "b2"},
                                         {"a2", "b1"},
                                         {"a3", "b3"}});
}

TEST(PredicateTest, FlatComparisons) {
  FlatTuple t{V("a1"), Value::Int(5)};
  EXPECT_TRUE(Predicate::Eq(0, V("a1")).EvalFlat(t));
  EXPECT_FALSE(Predicate::Eq(0, V("a2")).EvalFlat(t));
  EXPECT_TRUE(Predicate::Ne(0, V("a2")).EvalFlat(t));
  EXPECT_TRUE(Predicate::Lt(1, Value::Int(6)).EvalFlat(t));
  EXPECT_TRUE(Predicate::Le(1, Value::Int(5)).EvalFlat(t));
  EXPECT_TRUE(Predicate::Gt(1, Value::Int(4)).EvalFlat(t));
  EXPECT_TRUE(Predicate::Ge(1, Value::Int(5)).EvalFlat(t));
  EXPECT_FALSE(Predicate::Gt(1, Value::Int(5)).EvalFlat(t));
}

TEST(PredicateTest, Connectives) {
  FlatTuple t{V("a1"), V("b1")};
  Predicate p = Predicate::And(Predicate::Eq(0, V("a1")),
                               Predicate::Eq(1, V("b1")));
  EXPECT_TRUE(p.EvalFlat(t));
  Predicate q = Predicate::Or(Predicate::Eq(0, V("zz")),
                              Predicate::Eq(1, V("b1")));
  EXPECT_TRUE(q.EvalFlat(t));
  EXPECT_FALSE(Predicate::Not(q).EvalFlat(t));
  EXPECT_TRUE(Predicate::True().EvalFlat(t));
}

TEST(PredicateTest, NfrExistentialSemantics) {
  NfrTuple t{ValueSet{V("a1"), V("a2")}, ValueSet(V("b1"))};
  EXPECT_TRUE(Predicate::Eq(0, V("a2")).EvalNfrAny(t));
  EXPECT_FALSE(Predicate::Eq(0, V("a3")).EvalNfrAny(t));
  // AND across distinct attributes is exact on cross products.
  Predicate p = Predicate::And(Predicate::Eq(0, V("a1")),
                               Predicate::Eq(1, V("b1")));
  EXPECT_TRUE(p.EvalNfrAny(t));
  EXPECT_TRUE(p.MatchesExpansion(t));
}

TEST(PredicateTest, ExpansionExactnessVsExistential) {
  // A = a1 AND A = a2: exists per-leaf says true, but no single
  // expanded tuple satisfies both — MatchesExpansion is the exact one.
  NfrTuple t{ValueSet{V("a1"), V("a2")}, ValueSet(V("b1"))};
  Predicate p = Predicate::And(Predicate::Eq(0, V("a1")),
                               Predicate::Eq(0, V("a2")));
  EXPECT_TRUE(p.EvalNfrAny(t));          // Documented approximation.
  EXPECT_FALSE(p.MatchesExpansion(t));   // Exact.
}

TEST(PredicateTest, ToString) {
  Schema s = Schema::OfStrings({"A", "B"});
  Predicate p = Predicate::And(Predicate::Eq(0, V("x")),
                               Predicate::Not(Predicate::Lt(1, V("y"))));
  EXPECT_EQ(p.ToString(s), "(A = x AND NOT B < y)");
}

TEST(SelectTest, FiltersTuples) {
  FlatRelation out = Select(Sample(), Predicate::Eq(0, V("a1")));
  EXPECT_EQ(out.size(), 2u);
  for (const FlatTuple& t : out.tuples()) {
    EXPECT_EQ(t.at(0), V("a1"));
  }
}

TEST(ProjectTest, CollapsesDuplicates) {
  FlatRelation out = ProjectRelation(Sample(), {0});
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(out.schema().attribute(0).name, "A");
}

TEST(ProjectTest, ByNameAndErrors) {
  Result<FlatRelation> ok = ProjectByName(Sample(), {"B"});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 3u);
  EXPECT_FALSE(ProjectByName(Sample(), {"Z"}).ok());
}

TEST(SetOpsTest, UnionDifferenceIntersect) {
  FlatRelation a = MakeStringRelation({"A"}, {{"x"}, {"y"}});
  FlatRelation b = MakeStringRelation({"A"}, {{"y"}, {"z"}});
  Result<FlatRelation> u = Union(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->size(), 3u);
  Result<FlatRelation> d = Difference(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 1u);
  EXPECT_TRUE(d->Contains(FlatTuple{V("x")}));
  Result<FlatRelation> i = Intersect(a, b);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->size(), 1u);
  EXPECT_TRUE(i->Contains(FlatTuple{V("y")}));
}

TEST(SetOpsTest, SchemaMismatchErrors) {
  FlatRelation a = MakeStringRelation({"A"}, {{"x"}});
  FlatRelation b = MakeStringRelation({"B"}, {{"x"}});
  EXPECT_FALSE(Union(a, b).ok());
  EXPECT_FALSE(Difference(a, b).ok());
  EXPECT_FALSE(Intersect(a, b).ok());
}

TEST(ProductTest, CrossesAndChecksNames) {
  FlatRelation a = MakeStringRelation({"A"}, {{"x"}, {"y"}});
  FlatRelation b = MakeStringRelation({"B"}, {{"1"}, {"2"}, {"3"}});
  Result<FlatRelation> p = CartesianProduct(a, b);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->size(), 6u);
  EXPECT_EQ(p->degree(), 2u);
  EXPECT_FALSE(CartesianProduct(a, a).ok());  // Name collision.
}

TEST(NaturalJoinTest, JoinsOnSharedNames) {
  FlatRelation sc = MakeStringRelation({"S", "C"}, {{"s1", "c1"},
                                                    {"s2", "c1"},
                                                    {"s2", "c2"}});
  FlatRelation ct = MakeStringRelation({"C", "T"}, {{"c1", "t1"},
                                                    {"c2", "t2"},
                                                    {"c3", "t3"}});
  FlatRelation joined = NaturalJoin(sc, ct);
  EXPECT_EQ(joined.degree(), 3u);
  EXPECT_EQ(joined.size(), 3u);
  EXPECT_TRUE(joined.Contains(FlatTuple{V("s2"), V("c2"), V("t2")}));
}

TEST(NaturalJoinTest, NoSharedNamesIsCrossProduct) {
  FlatRelation a = MakeStringRelation({"A"}, {{"x"}});
  FlatRelation b = MakeStringRelation({"B"}, {{"1"}, {"2"}});
  EXPECT_EQ(NaturalJoin(a, b).size(), 2u);
}

TEST(RenameTest, RenamesAndValidates) {
  Result<FlatRelation> ok = Rename(Sample(), "A", "X");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->schema().attribute(0).name, "X");
  EXPECT_FALSE(Rename(Sample(), "Z", "Y").ok());
  EXPECT_FALSE(Rename(Sample(), "A", "B").ok());
}

TEST(NfrSelectTest, TupleLevelKeepsWholeTuples) {
  NfrRelation r(Schema::OfStrings({"A", "B"}));
  r.Add(NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet(V("b1"))});
  r.Add(NfrTuple{ValueSet(V("a3")), ValueSet(V("b2"))});
  NfrRelation out = SelectNfrTuples(r, Predicate::Eq(0, V("a1")));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.tuple(0).at(0), (ValueSet{V("a1"), V("a2")}));
}

TEST(NfrSelectTest, ExactRestrictsExpansion) {
  NfrRelation r(Schema::OfStrings({"A", "B"}));
  r.Add(NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet(V("b1"))});
  NfrRelation out = SelectNfrExact(r, Predicate::Eq(0, V("a1")));
  EXPECT_EQ(out.Expand(),
            MakeStringRelation({"A", "B"}, {{"a1", "b1"}}));
}

TEST(NfrSelectTest, ExactEqualsFlatSelectOnExpansion) {
  Rng rng(31);
  FlatRelation flat = RandomFlatRelation(&rng, 3, 3, 12);
  NfrRelation nested = CanonicalForm(flat, {0, 1, 2});
  Predicate p = Predicate::Eq(1, V("v1_0"));
  EXPECT_EQ(SelectNfrExact(nested, p).Expand(), Select(flat, p));
}

TEST(NfrProjectTest, DenotesProjectedExpansion) {
  NfrRelation r(Schema::OfStrings({"A", "B", "C"}));
  r.Add(NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet(V("b1")),
                 ValueSet(V("c1"))});
  r.Add(NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet(V("b2")),
                 ValueSet(V("c1"))});
  NfrRelation out = ProjectNfr(r, {0, 2});
  // The two tuples project identically and must collapse.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.Expand(), MakeStringRelation({"A", "C"}, {{"a1", "c1"},
                                                          {"a2", "c1"}}));
}

TEST(GroupedCountsTest, CountsComponentSizes) {
  // [Student, Course] nested per student: counts are component sizes.
  FlatRelation flat = MakeStringRelation(
      {"Student", "Course"},
      {{"s1", "c1"}, {"s1", "c2"}, {"s1", "c3"}, {"s2", "c1"}});
  NfrRelation nested = CanonicalForm(flat, {1, 0});
  Result<std::vector<GroupCount>> counts =
      GroupedDistinctCounts(nested, 0, 1);
  ASSERT_TRUE(counts.ok());
  ASSERT_EQ(counts->size(), 2u);
  EXPECT_EQ((*counts)[0], (GroupCount{V("s1"), 3}));
  EXPECT_EQ((*counts)[1], (GroupCount{V("s2"), 1}));
}

TEST(GroupedCountsTest, AgreesWithFlatAggregation) {
  // The NFR aggregate equals the count computed over R* directly, for
  // any nesting state of the relation.
  Rng rng(41);
  for (int trial = 0; trial < 10; ++trial) {
    FlatRelation flat = RandomFlatRelation(&rng, 3, 3, 14);
    for (const Permutation& perm : AllPermutations(3)) {
      NfrRelation nested = CanonicalForm(flat, perm);
      Result<std::vector<GroupCount>> counts =
          GroupedDistinctCounts(nested, 0, 2);
      ASSERT_TRUE(counts.ok());
      // Flat reference.
      std::map<Value, std::set<Value>> reference;
      for (const FlatTuple& t : flat.tuples()) {
        reference[t.at(0)].insert(t.at(2));
      }
      ASSERT_EQ(counts->size(), reference.size());
      for (const GroupCount& gc : *counts) {
        EXPECT_EQ(gc.count, reference[gc.group].size())
            << gc.group.ToString();
      }
    }
  }
}

TEST(GroupedCountsTest, Errors) {
  NfrRelation rel(Schema::OfStrings({"A", "B"}));
  EXPECT_FALSE(GroupedDistinctCounts(rel, 0, 0).ok());
  EXPECT_FALSE(GroupedDistinctCounts(rel, 0, 5).ok());
  EXPECT_FALSE(GroupedDistinctCounts(rel, 9, 0).ok());
  Result<std::vector<GroupCount>> empty = GroupedDistinctCounts(rel, 0, 1);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(NestUnnestByNameTest, RoundTrip) {
  FlatRelation flat = Sample();
  NfrRelation start = NfrRelation::FromFlat(flat);
  Result<NfrRelation> nested = NestByName(start, "A");
  ASSERT_TRUE(nested.ok());
  EXPECT_LT(nested->size(), flat.size());
  Result<NfrRelation> unnested = UnnestByName(*nested, "A");
  ASSERT_TRUE(unnested.ok());
  EXPECT_EQ(unnested->Expand(), flat);
  EXPECT_FALSE(NestByName(start, "Z").ok());
  EXPECT_FALSE(UnnestByName(start, "Z").ok());
}

TEST(NestUnnestByNameTest, SequenceAndCanonical) {
  FlatRelation flat = Sample();
  Result<NfrRelation> canonical = CanonicalFormByName(flat, {"B", "A"});
  ASSERT_TRUE(canonical.ok());
  Result<NfrRelation> sequence =
      NestSequenceByName(NfrRelation::FromFlat(flat), {"B", "A"});
  ASSERT_TRUE(sequence.ok());
  EXPECT_TRUE(canonical->EqualsAsSet(*sequence));
  EXPECT_FALSE(CanonicalFormByName(flat, {"B"}).ok());  // Not a perm.
}

}  // namespace
}  // namespace nf2
