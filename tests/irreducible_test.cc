#include <gtest/gtest.h>

#include "core/irreducible.h"
#include "core/nest.h"
#include "tests/test_util.h"

namespace nf2 {
namespace {

FlatRelation Example1Flat() {
  return MakeStringRelation({"A", "B"}, {{"a1", "b1"},
                                         {"a2", "b1"},
                                         {"a2", "b2"},
                                         {"a3", "b2"}});
}

FlatRelation Example2Flat() {
  return MakeStringRelation({"A", "B", "C"}, {{"a1", "b1", "c2"},
                                              {"a1", "b2", "c1"},
                                              {"a1", "b2", "c2"},
                                              {"a2", "b1", "c1"},
                                              {"a2", "b1", "c2"},
                                              {"a2", "b2", "c1"}});
}

TEST(IrreducibleTest, FlatRelationWithSharedValuesIsReducible) {
  EXPECT_FALSE(IsIrreducible(NfrRelation::FromFlat(Example1Flat())));
}

TEST(IrreducibleTest, SingleTupleIsIrreducible) {
  NfrRelation r(Schema::OfStrings({"A"}));
  r.Add(NfrTuple{ValueSet{V("x"), V("y")}});
  EXPECT_TRUE(IsIrreducible(r));
}

TEST(IrreducibleTest, EmptyRelationIsIrreducible) {
  EXPECT_TRUE(IsIrreducible(NfrRelation(Schema::OfStrings({"A", "B"}))));
}

TEST(IrreducibleTest, Example1FirstIrreducibleForm) {
  // R1: {[A(a1,a2) B(b1)], [A(a2,a3) B(b2)]} via vA(r1,r2), vA(r3,r4).
  NfrRelation r1(Schema::OfStrings({"A", "B"}));
  r1.Add(NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet(V("b1"))});
  r1.Add(NfrTuple{ValueSet{V("a2"), V("a3")}, ValueSet(V("b2"))});
  EXPECT_TRUE(IsIrreducible(r1));
  EXPECT_EQ(r1.Expand(), Example1Flat());
}

TEST(IrreducibleTest, Example1SecondIrreducibleForm) {
  // R2: {[A(a1) B(b1)], [A(a2) B(b1,b2)], [A(a3) B(b2)]} via vB(r2,r3).
  NfrRelation r2(Schema::OfStrings({"A", "B"}));
  r2.Add(NfrTuple{ValueSet(V("a1")), ValueSet(V("b1"))});
  r2.Add(NfrTuple{ValueSet(V("a2")), ValueSet{V("b1"), V("b2")}});
  r2.Add(NfrTuple{ValueSet(V("a3")), ValueSet(V("b2"))});
  EXPECT_TRUE(IsIrreducible(r2));
  EXPECT_EQ(r2.Expand(), Example1Flat());
}

TEST(IrreducibleTest, Example1BothFormsReachableByReduction) {
  // Randomized reduction reaches both of Example 1's irreducible forms
  // (2 tuples and 3 tuples) across seeds — irreducible forms are not
  // unique.
  std::set<size_t> sizes;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed);
    NfrRelation reduced =
        ReduceRandomized(NfrRelation::FromFlat(Example1Flat()), &rng);
    EXPECT_TRUE(IsIrreducible(reduced));
    EXPECT_EQ(reduced.Expand(), Example1Flat());
    sizes.insert(reduced.size());
  }
  EXPECT_TRUE(sizes.count(2)) << "never reached the 2-tuple form";
  EXPECT_TRUE(sizes.count(3)) << "never reached the 3-tuple form";
}

TEST(IrreducibleTest, ReduceGreedyIsIrreducibleAndEquivalent) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    FlatRelation flat = RandomFlatRelation(&rng, 3, 3, 12);
    NfrRelation reduced = ReduceGreedy(NfrRelation::FromFlat(flat));
    EXPECT_TRUE(IsIrreducible(reduced));
    EXPECT_EQ(reduced.Expand(), flat);
  }
}

TEST(IrreducibleTest, ReduceGreedyIsDeterministic) {
  Rng rng(78);
  FlatRelation flat = RandomFlatRelation(&rng, 3, 3, 12);
  NfrRelation a = ReduceGreedy(NfrRelation::FromFlat(flat));
  NfrRelation b = ReduceGreedy(NfrRelation::FromFlat(flat));
  EXPECT_TRUE(a.EqualsAsSet(b));
}

TEST(IrreducibleTest, Example2MinimalBeatsEveryCanonicalForm) {
  // The headline of Example 2: an irreducible form with 3 tuples exists
  // while every canonical form needs 4.
  FlatRelation flat = Example2Flat();
  Result<NfrRelation> minimal = MinimalIrreducible(flat);
  ASSERT_TRUE(minimal.ok()) << minimal.status();
  EXPECT_EQ(minimal->size(), 3u);
  EXPECT_EQ(minimal->Expand(), flat);
  EXPECT_TRUE(IsIrreducible(*minimal));
  EXPECT_EQ(MinCanonicalSize(flat), 4u);
}

TEST(IrreducibleTest, Example2PaperR4IsAValidIrreducibleForm) {
  // The paper's R4 = {[A(a1) B(b1,b2) C(c2)], [A(a2) B(b1) C(c1,c2)],
  // [A(a1,a2) B(b2) C(c1)]} is a 3-tuple irreducible form of R3. (The
  // minimum is not unique — R3 is symmetric — so we check R4 itself and
  // that MinimalIrreducible matches its size.)
  FlatRelation flat = Example2Flat();
  NfrRelation r4(flat.schema());
  r4.Add(NfrTuple{ValueSet(V("a1")), ValueSet{V("b1"), V("b2")},
                  ValueSet(V("c2"))});
  r4.Add(NfrTuple{ValueSet(V("a2")), ValueSet(V("b1")),
                  ValueSet{V("c1"), V("c2")}});
  r4.Add(NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet(V("b2")),
                  ValueSet(V("c1"))});
  EXPECT_EQ(r4.Expand(), flat);
  EXPECT_TRUE(IsIrreducible(r4));
  EXPECT_TRUE(r4.Validate().ok());
  Result<NfrRelation> minimal = MinimalIrreducible(flat);
  ASSERT_TRUE(minimal.ok());
  EXPECT_EQ(minimal->size(), r4.size());
}

TEST(IrreducibleTest, MinimalNeverLargerThanCanonical) {
  Rng rng(79);
  for (int trial = 0; trial < 8; ++trial) {
    FlatRelation flat = RandomFlatRelation(&rng, 3, 2, 6);
    Result<NfrRelation> minimal = MinimalIrreducible(flat);
    ASSERT_TRUE(minimal.ok());
    EXPECT_LE(minimal->size(), MinCanonicalSize(flat));
    EXPECT_EQ(minimal->Expand(), flat);
    EXPECT_TRUE(IsIrreducible(*minimal));
  }
}

TEST(IrreducibleTest, MinimalErrorsOnOversizedInput) {
  Rng rng(80);
  FlatRelation flat = RandomFlatRelation(&rng, 2, 30, 40);
  if (flat.size() > 16) {
    Result<NfrRelation> r = MinimalIrreducible(flat);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(IrreducibleTest, MinimalOfEmptyRelation) {
  FlatRelation flat(Schema::OfStrings({"A", "B"}));
  Result<NfrRelation> r = MinimalIrreducible(flat);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 0u);
}

}  // namespace
}  // namespace nf2
