// End-to-end tests of WAL shipping (DESIGN.md §14): a primary nf2d
// stack streaming its per-shard logical WALs to a follower that applies
// them through the same §4 update algorithms. The headline property is
// Theorem 2's: at quiesce, each follower shard's canonical form is
// BIT-IDENTICAL to its primary shard's — replication is replay, and
// replay lands on the unique canonical form.

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/format.h"
#include "engine/database.h"
#include "server/client.h"
#include "server/replication.h"
#include "server/server.h"
#include "shard/router.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace nf2 {
namespace {

using server::Client;
using server::DecodeShardPositions;
using server::DecodeWalSegment;
using server::EncodeShardPositions;
using server::EncodeWalSegment;
using server::ReadOnlyProvider;
using server::ReplicationHub;
using server::Replicator;
using server::Server;
using server::ServerOptions;
using server::ShardPosition;
using server::WalSegment;

// ---- Codec unit tests -------------------------------------------------

TEST(ReplicationCodec, ShardPositionsRoundTrip) {
  std::vector<ShardPosition> positions = {
      {0, 0, 0}, {1, 3, 4104}, {2, 0, 17}};
  auto decoded = DecodeShardPositions(EncodeShardPositions(positions));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, positions);

  auto empty = DecodeShardPositions(EncodeShardPositions({}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(ReplicationCodec, ShardPositionsRejectGarbage) {
  EXPECT_FALSE(DecodeShardPositions("abc").ok());
  std::string good = EncodeShardPositions({{0, 1, 2}});
  EXPECT_FALSE(DecodeShardPositions(good + "x").ok());  // Trailing bytes.
  EXPECT_FALSE(DecodeShardPositions(good.substr(0, good.size() - 3)).ok());
}

TEST(ReplicationCodec, WalSegmentRoundTripsEveryKind) {
  WalSegment hello;
  hello.kind = WalSegment::Kind::kHello;
  hello.shard_count = 4;
  auto h = DecodeWalSegment(EncodeWalSegment(hello));
  ASSERT_TRUE(h.ok()) << h.status();
  EXPECT_EQ(h->kind, WalSegment::Kind::kHello);
  EXPECT_EQ(h->shard_count, 4u);

  WalSegment records;
  records.kind = WalSegment::Kind::kRecords;
  records.shard = 2;
  records.epoch = 1;
  records.lsn = 42;
  records.send_unix_ms = 123456789;
  records.records.push_back({41, WalOpType::kInsert, "takes", "payload-a"});
  records.records.push_back({42, WalOpType::kTxnCommit, "", ""});
  auto r = DecodeWalSegment(EncodeWalSegment(records));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->shard, 2u);
  EXPECT_EQ(r->lsn, 42u);
  EXPECT_EQ(r->send_unix_ms, 123456789u);
  ASSERT_EQ(r->records.size(), 2u);
  EXPECT_EQ(r->records[0], records.records[0]);
  EXPECT_EQ(r->records[1], records.records[1]);

  WalSegment trunc;
  trunc.kind = WalSegment::Kind::kTruncate;
  trunc.shard = 1;
  trunc.epoch = 5;
  trunc.lsn = 900;
  auto t = DecodeWalSegment(EncodeWalSegment(trunc));
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->kind, WalSegment::Kind::kTruncate);
  EXPECT_EQ(t->epoch, 5u);
  EXPECT_EQ(t->lsn, 900u);

  WalSegment snap_rel;
  snap_rel.kind = WalSegment::Kind::kSnapshotRelation;
  snap_rel.relation_payload = std::string("\x01\x02\x00raw", 6);
  auto sr = DecodeWalSegment(EncodeWalSegment(snap_rel));
  ASSERT_TRUE(sr.ok());
  EXPECT_EQ(sr->relation_payload, snap_rel.relation_payload);
}

TEST(ReplicationCodec, WalSegmentRejectsGarbage) {
  EXPECT_FALSE(DecodeWalSegment("").ok());
  EXPECT_FALSE(DecodeWalSegment(std::string("\x09\0\0\0\0", 5)).ok());
  std::string good = EncodeWalSegment([] {
    WalSegment s;
    s.kind = WalSegment::Kind::kTruncate;
    return s;
  }());
  EXPECT_FALSE(DecodeWalSegment(good + "zz").ok());  // Trailing bytes.
  // A record with an op type outside the WalOpType range is rejected.
  WalSegment records;
  records.kind = WalSegment::Kind::kRecords;
  records.records.push_back({1, WalOpType::kInsert, "r", "p"});
  std::string bytes = EncodeWalSegment(records);
  // The type byte sits after the fixed header (kind, shard, epoch, lsn,
  // send_ms, count) and the record's own u64 lsn.
  const size_t type_at = 1 + 4 + 8 + 8 + 8 + 4 + 8;
  ASSERT_LT(type_at, bytes.size());
  bytes[type_at] = '\x77';
  EXPECT_FALSE(DecodeWalSegment(bytes).ok());
}

// ---- End-to-end fixture -----------------------------------------------

/// A primary (shard group + hub + server) and a follower (shard group +
/// replicator + read-only server), both on loopback ephemeral ports.
class ReplicationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = (std::filesystem::temp_directory_path() /
             ("nf2_repl_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name())))
                .string();
    std::filesystem::remove_all(base_);
    ASSERT_TRUE(Env::Default()->CreateDirs(base_).ok());
  }

  void TearDown() override {
    StopFollower();
    StopPrimaryServer();
    follower_router_.reset();
    primary_router_.reset();
    std::filesystem::remove_all(base_);
  }

  std::string PrimaryDir() const { return base_ + "/primary"; }
  std::string FollowerDir() const { return base_ + "/follower"; }

  void OpenPrimary(size_t shards) {
    shard::ShardRouter::Options options;
    options.shards = shards;
    auto router = shard::ShardRouter::Open(PrimaryDir(), options);
    ASSERT_TRUE(router.ok()) << router.status();
    primary_router_ = *std::move(router);
    std::vector<Database*> dbs;
    for (size_t i = 0; i < primary_router_->shard_count(); ++i) {
      dbs.push_back(primary_router_->shard_db(i));
    }
    hub_ = std::make_unique<ReplicationHub>(
        dbs, primary_router_->metrics_registry());
  }

  /// Starts (or restarts) the primary server. `port` 0 = ephemeral;
  /// restarts pass the previous port so the follower's reconnect loop
  /// finds the primary where it left it.
  void StartPrimaryServer(uint16_t port = 0) {
    ServerOptions options;
    options.port = port;
    options.replication = hub_.get();
    primary_server_ = std::make_unique<Server>(primary_router_.get(),
                                               options);
    Status s = primary_server_->Start();
    ASSERT_TRUE(s.ok()) << s;
    primary_port_ = primary_server_->port();
  }

  void StopPrimaryServer() {
    if (primary_server_ != nullptr) {
      primary_server_->Stop();
      primary_server_.reset();
    }
  }

  /// Opens the follower stack: shard layout matching the primary,
  /// replicator, and a read-only server on an ephemeral port.
  void StartFollower() {
    if (follower_router_ == nullptr) {
      auto probed = Replicator::ProbeShardCount("127.0.0.1", primary_port_);
      ASSERT_TRUE(probed.ok()) << probed.status();
      shard::ShardRouter::Options options;
      options.shards = *probed;
      auto router = shard::ShardRouter::Open(FollowerDir(), options);
      ASSERT_TRUE(router.ok()) << router.status();
      follower_router_ = *std::move(router);
    }
    std::vector<Database*> dbs;
    for (size_t i = 0; i < follower_router_->shard_count(); ++i) {
      dbs.push_back(follower_router_->shard_db(i));
    }
    Replicator::Options options;
    options.host = "127.0.0.1";
    options.port = primary_port_;
    options.dir = FollowerDir();
    options.backoff_min = std::chrono::milliseconds(50);
    options.backoff_max = std::chrono::milliseconds(250);
    replicator_ = std::make_unique<Replicator>(
        options, dbs, follower_router_->metrics_registry(), Env::Default());
    ASSERT_TRUE(replicator_->Start().ok());
    provider_ = std::make_unique<ReadOnlyProvider>(follower_router_.get(),
                                                   replicator_.get());
    ServerOptions server_options;
    server_options.port = 0;
    follower_server_ = std::make_unique<Server>(provider_.get(),
                                                server_options);
    Status s = follower_server_->Start();
    ASSERT_TRUE(s.ok()) << s;
  }

  void StopFollower() {
    if (follower_server_ != nullptr) {
      follower_server_->Stop();  // Stops the replicator via the provider.
      follower_server_.reset();
    }
    provider_.reset();
    replicator_.reset();
  }

  Client ConnectPrimary() {
    auto client = Client::Connect("127.0.0.1", primary_port_);
    EXPECT_TRUE(client.ok()) << client.status();
    return *std::move(client);
  }

  Client ConnectFollower() {
    auto client = Client::Connect("127.0.0.1", follower_server_->port());
    EXPECT_TRUE(client.ok()) << client.status();
    return *std::move(client);
  }

  /// Blocks until the follower has applied at least the primary's
  /// per-shard WAL positions as of this call, AND reports caught-up.
  /// The explicit position targets make the wait deterministic:
  /// CaughtUp() alone can be true against a head report that predates
  /// the writes this test just issued.
  void AwaitCaughtUp(int timeout_ms = 20000) {
    std::vector<uint64_t> heads;
    for (size_t i = 0; i < primary_router_->shard_count(); ++i) {
      heads.push_back(primary_router_->shard_db(i)->wal()->position().lsn);
    }
    auto reached = [&] {
      std::vector<ShardPosition> applied = replicator_->AppliedPositions();
      for (size_t i = 0; i < heads.size(); ++i) {
        if (applied[i].lsn < heads[i]) return false;
      }
      return replicator_->CaughtUp();
    };
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (!reached()) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "follower never caught up: " << replicator_->StatusText();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  /// The Theorem-2 acceptance check: every relation's stored canonical
  /// form, rendered per shard, must be bit-identical between primary
  /// and follower.
  void ExpectCanonicalFormsIdentical() {
    ASSERT_EQ(primary_router_->shard_count(),
              follower_router_->shard_count());
    for (size_t i = 0; i < primary_router_->shard_count(); ++i) {
      Database* p = primary_router_->shard_db(i);
      Database* f = follower_router_->shard_db(i);
      std::vector<std::string> p_names = p->ListRelations();
      EXPECT_EQ(p_names, f->ListRelations()) << "shard " << i;
      for (const std::string& name : p_names) {
        auto p_rel = p->Relation(name);
        auto f_rel = f->Relation(name);
        ASSERT_TRUE(p_rel.ok()) << p_rel.status();
        ASSERT_TRUE(f_rel.ok()) << "shard " << i << " relation " << name
                                << ": " << f_rel.status();
        EXPECT_EQ(RenderTable(**p_rel, name), RenderTable(**f_rel, name))
            << "shard " << i << " relation " << name
            << ": canonical forms diverge";
      }
    }
  }

  std::string base_;
  std::unique_ptr<shard::ShardRouter> primary_router_;
  std::unique_ptr<ReplicationHub> hub_;
  std::unique_ptr<Server> primary_server_;
  uint16_t primary_port_ = 0;

  std::unique_ptr<shard::ShardRouter> follower_router_;
  std::unique_ptr<Replicator> replicator_;
  std::unique_ptr<ReadOnlyProvider> provider_;
  std::unique_ptr<Server> follower_server_;
};

TEST_F(ReplicationTest, FollowerCatchesUpThenTailsLiveWrites) {
  OpenPrimary(/*shards=*/1);
  StartPrimaryServer();
  {
    // Rows written BEFORE the follower exists: the catch-up path.
    Client primary = ConnectPrimary();
    ASSERT_TRUE(primary
                    .Execute("CREATE RELATION takes (Student STRING, "
                             "Course STRING, Club STRING) "
                             "MVD Student ->-> Course")
                    .ok());
    ASSERT_TRUE(primary
                    .Execute("INSERT INTO takes VALUES "
                             "(ada, algebra, chess), (ada, crypto, chess)")
                    .ok());
    ASSERT_TRUE(primary.Quit().ok());
  }

  StartFollower();
  AwaitCaughtUp();
  {
    Client follower = ConnectFollower();
    auto count = follower.Execute("SELECT COUNT(*) FROM takes");
    ASSERT_TRUE(count.ok()) << count.status();
    EXPECT_EQ(*count, "2");
    ASSERT_TRUE(follower.Quit().ok());
  }

  {
    // Rows written WHILE the follower tails: the live path.
    Client primary = ConnectPrimary();
    ASSERT_TRUE(primary
                    .Execute("INSERT INTO takes VALUES "
                             "(bob, algebra, go), (eve, crypto, go)")
                    .ok());
    ASSERT_TRUE(
        primary.Execute("DELETE FROM takes WHERE Student = ada").ok());
    ASSERT_TRUE(primary.Quit().ok());
  }
  AwaitCaughtUp();
  {
    Client follower = ConnectFollower();
    auto count = follower.Execute("SELECT COUNT(*) FROM takes");
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, "2");
    auto rows = follower.Execute("SELECT * FROM takes WHERE Student = bob");
    ASSERT_TRUE(rows.ok());
    EXPECT_NE(rows->find("algebra"), std::string::npos);
    ASSERT_TRUE(follower.Quit().ok());
  }
  ExpectCanonicalFormsIdentical();
}

TEST_F(ReplicationTest, FollowerRejectsWritesAndTransactions) {
  OpenPrimary(/*shards=*/1);
  StartPrimaryServer();
  {
    Client primary = ConnectPrimary();
    ASSERT_TRUE(
        primary.Execute("CREATE RELATION r (a STRING, b STRING)").ok());
    ASSERT_TRUE(primary.Execute("INSERT INTO r VALUES (x, y)").ok());
    ASSERT_TRUE(primary.Quit().ok());
  }
  StartFollower();
  AwaitCaughtUp();

  Client follower = ConnectFollower();
  // Reads flow.
  auto count = follower.Execute("SELECT COUNT(*) FROM r");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, "1");
  // Mutations bounce with kUnavailable (the kBusy wire frame), naming
  // the primary as the write target.
  for (const char* stmt :
       {"INSERT INTO r VALUES (p, q)", "DELETE FROM r WHERE a = x",
        "BEGIN", "CREATE RELATION s (c STRING)", "DROP RELATION r",
        "CHECKPOINT"}) {
    auto result = follower.Execute(stmt);
    ASSERT_FALSE(result.ok()) << stmt << " succeeded on a follower";
    EXPECT_EQ(result.status().code(), StatusCode::kUnavailable) << stmt;
  }
  // The refused writes changed nothing.
  count = follower.Execute("SELECT COUNT(*) FROM r");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, "1");
  // The \replica meta command reports the stream.
  auto replica = follower.Execute("\\replica");
  ASSERT_TRUE(replica.ok()) << replica.status();
  EXPECT_NE(replica->find("connected: yes"), std::string::npos);
  EXPECT_NE(replica->find("shard 0"), std::string::npos);
  // Lag metrics are registered and visible over the wire.
  auto prom = follower.Execute("\\metrics prom");
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom->find("nf2_repl_lag_records"), std::string::npos);
  ASSERT_TRUE(follower.Quit().ok());
}

TEST_F(ReplicationTest, TransactionsApplyAtomicallyAndAbortsAreSkipped) {
  OpenPrimary(/*shards=*/1);
  StartPrimaryServer();
  StartFollower();
  {
    Client primary = ConnectPrimary();
    ASSERT_TRUE(
        primary.Execute("CREATE RELATION acct (owner STRING, asset STRING)")
            .ok());
    ASSERT_TRUE(primary.Execute("BEGIN").ok());
    ASSERT_TRUE(
        primary.Execute("INSERT INTO acct VALUES (ada, gold)").ok());
    ASSERT_TRUE(
        primary.Execute("INSERT INTO acct VALUES (bob, iron)").ok());
    ASSERT_TRUE(primary.Execute("COMMIT").ok());
    ASSERT_TRUE(primary.Execute("BEGIN").ok());
    ASSERT_TRUE(
        primary.Execute("INSERT INTO acct VALUES (eve, tin)").ok());
    ASSERT_TRUE(primary.Execute("ROLLBACK").ok());
    ASSERT_TRUE(primary.Quit().ok());
  }
  AwaitCaughtUp();
  {
    Client follower = ConnectFollower();
    auto count = follower.Execute("SELECT COUNT(*) FROM acct");
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, "2") << "committed rows missing or aborted row leaked";
    auto eve = follower.Execute("SELECT COUNT(*) FROM acct WHERE owner = eve");
    ASSERT_TRUE(eve.ok());
    EXPECT_EQ(*eve, "0");
    ASSERT_TRUE(follower.Quit().ok());
  }
  ExpectCanonicalFormsIdentical();
}

TEST_F(ReplicationTest, FreshFollowerBootstrapsFromSnapshotAfterTruncate) {
  OpenPrimary(/*shards=*/1);
  StartPrimaryServer();
  {
    Client primary = ConnectPrimary();
    ASSERT_TRUE(
        primary.Execute("CREATE RELATION r (a STRING, b STRING)").ok());
    ASSERT_TRUE(
        primary.Execute("INSERT INTO r VALUES (x, y), (u, v)").ok());
    // CHECKPOINT truncates the WAL: the records a from-zero follower
    // would need are gone, so subscription must fall back to a pinned
    // MVCC snapshot.
    ASSERT_TRUE(primary.Execute("CHECKPOINT").ok());
    ASSERT_TRUE(primary.Execute("INSERT INTO r VALUES (p, q)").ok());
    ASSERT_TRUE(primary.Quit().ok());
  }
  ASSERT_GE(primary_router_->shard_db(0)->wal()->epoch(), 1u)
      << "checkpoint did not truncate; the test would not cover bootstrap";

  StartFollower();
  AwaitCaughtUp();
  {
    Client follower = ConnectFollower();
    auto count = follower.Execute("SELECT COUNT(*) FROM r");
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, "3");
    ASSERT_TRUE(follower.Quit().ok());
  }
  ExpectCanonicalFormsIdentical();
}

TEST_F(ReplicationTest, FollowerReconnectsAfterPrimaryRestart) {
  OpenPrimary(/*shards=*/1);
  StartPrimaryServer();
  {
    Client primary = ConnectPrimary();
    ASSERT_TRUE(
        primary.Execute("CREATE RELATION r (a STRING, b STRING)").ok());
    ASSERT_TRUE(primary.Execute("INSERT INTO r VALUES (x, y)").ok());
    ASSERT_TRUE(primary.Quit().ok());
  }
  StartFollower();
  AwaitCaughtUp();

  // Primary goes away (graceful stop = shutdown checkpoint + WAL
  // truncate); rows are written while the follower is disconnected.
  const uint16_t port = primary_port_;
  StopPrimaryServer();
  ASSERT_TRUE(primary_router_->shard_db(0)
                  ->Insert("r", FlatTuple{Value::String("u"),
                                          Value::String("v")})
                  .ok());
  StartPrimaryServer(port);

  AwaitCaughtUp();
  {
    Client follower = ConnectFollower();
    auto count = follower.Execute("SELECT COUNT(*) FROM r");
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, "2");
    ASSERT_TRUE(follower.Quit().ok());
  }
  EXPECT_GE(follower_router_->metrics_registry()
                ->GetCounter("nf2_repl_reconnects_total")
                ->value(),
            1u);
  ExpectCanonicalFormsIdentical();
}

TEST_F(ReplicationTest, FollowerPositionSurvivesItsOwnRestart) {
  OpenPrimary(/*shards=*/1);
  StartPrimaryServer();
  {
    Client primary = ConnectPrimary();
    ASSERT_TRUE(
        primary.Execute("CREATE RELATION r (a STRING, b STRING)").ok());
    ASSERT_TRUE(primary.Execute("INSERT INTO r VALUES (x, y)").ok());
    ASSERT_TRUE(primary.Quit().ok());
  }
  StartFollower();
  AwaitCaughtUp();
  StopFollower();

  // More writes while the follower is down, then a cold follower
  // restart: it must resume from its persisted REPL.nf2 position and
  // re-apply idempotently, not double-apply or bootstrap from zero.
  {
    Client primary = ConnectPrimary();
    ASSERT_TRUE(primary.Execute("INSERT INTO r VALUES (u, v)").ok());
    ASSERT_TRUE(primary.Quit().ok());
  }
  follower_router_.reset();  // Close the shard group; reopen on start.
  StartFollower();
  AwaitCaughtUp();
  {
    Client follower = ConnectFollower();
    auto count = follower.Execute("SELECT COUNT(*) FROM r");
    ASSERT_TRUE(count.ok());
    EXPECT_EQ(*count, "2");
    ASSERT_TRUE(follower.Quit().ok());
  }
  ExpectCanonicalFormsIdentical();
}

// ---------------------------------------------------------------------
// Torture: a sharded primary under a deterministic keyed write storm —
// autocommit runs, multi-op transactions, rollbacks, DDL, and primary
// checkpoints — while the primary SERVER is killed and restarted at
// every phase boundary (the follower reconnects mid-storm each time,
// sometimes resuming from the log, sometimes past a truncation that
// forces a snapshot bootstrap). At quiesce the follower must hold
// bit-identical canonical forms on every shard.
// ---------------------------------------------------------------------

TEST_F(ReplicationTest, ShardedWriteStormSurvivesPrimaryKills) {
  constexpr size_t kShards = 2;
  constexpr int kPhases = 6;
  constexpr int kUnitsPerPhase = 40;

  OpenPrimary(kShards);
  StartPrimaryServer();
  {
    Client primary = ConnectPrimary();
    ASSERT_TRUE(
        primary
            .Execute("CREATE RELATION storm (k STRING, v STRING, w STRING)")
            .ok());
    ASSERT_TRUE(primary.Quit().ok());
  }
  StartFollower();

  Rng rng(0xF0110E);
  const uint16_t port = primary_port_;
  // Mutations go straight at the shard engines (replication is
  // per-shard WAL replay; routing is irrelevant to it), which keeps the
  // storm running while the primary server is down.
  auto one_unit = [&](int phase, int unit) {
    Database* db = primary_router_->shard_db(
        rng.NextBelow(primary_router_->shard_count()));
    auto tuple = [&] {
      return FlatTuple{Value::String(StrCat("k", rng.NextBelow(12))),
                       Value::String(StrCat("v", rng.NextBelow(6))),
                       Value::String(StrCat("w", rng.NextBelow(4)))};
    };
    const uint64_t kind = rng.NextBelow(10);
    if (kind < 6) {
      // Autocommit insert/delete; collisions with existing keys are
      // fine (AlreadyExists / NotFound are part of the workload).
      if (kind % 2 == 0) {
        (void)db->Insert("storm", tuple());
      } else {
        (void)db->Delete("storm", tuple());
      }
    } else if (kind < 9) {
      // A small transaction, committed or rolled back.
      ASSERT_TRUE(db->Begin().ok()) << "phase " << phase << " unit " << unit;
      for (int i = 0; i < 3; ++i) (void)db->Insert("storm", tuple());
      if (kind == 8) {
        ASSERT_TRUE(db->Rollback().ok());
      } else {
        ASSERT_TRUE(db->Commit().ok());
      }
    } else {
      // A primary-side checkpoint: truncates that shard's WAL under
      // the live subscription.
      ASSERT_TRUE(db->Checkpoint().ok())
          << "phase " << phase << " unit " << unit;
    }
  };

  for (int phase = 0; phase < kPhases; ++phase) {
    for (int unit = 0; unit < kUnitsPerPhase; ++unit) {
      one_unit(phase, unit);
      if (::testing::Test::HasFailure()) return;
    }
    // Kill the primary server mid-stream (ungraceful for the
    // subscriber: its socket just dies). Keep writing while it is
    // down, then restart on the same port and let the follower
    // reconnect and catch up.
    StopPrimaryServer();
    for (int unit = 0; unit < kUnitsPerPhase; ++unit) {
      one_unit(phase, kUnitsPerPhase + unit);
      if (::testing::Test::HasFailure()) return;
    }
    StartPrimaryServer(port);
  }

  AwaitCaughtUp(/*timeout_ms=*/60000);
  ExpectCanonicalFormsIdentical();

  // The storm must have actually exercised the hard paths.
  // At least some kills must have hit a live connection (the follower
  // can sleep in backoff through a fast kill/restart cycle, so the
  // count is not exactly kPhases).
  EXPECT_GE(follower_router_->metrics_registry()
                ->GetCounter("nf2_repl_reconnects_total")
                ->value(),
            2u);
  EXPECT_GT(follower_router_->metrics_registry()
                ->GetCounter("nf2_repl_applied_records_total")
                ->value(),
            0u);
}

}  // namespace
}  // namespace nf2
