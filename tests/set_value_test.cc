#include <gtest/gtest.h>

#include <filesystem>

#include "core/compose.h"
#include "core/nest.h"
#include "core/update.h"
#include "nfrql/executor.h"
#include "storage/serde.h"

namespace nf2 {
namespace {

Value Prereq(std::initializer_list<const char*> courses) {
  std::vector<Value> elements;
  for (const char* c : courses) elements.push_back(V(c));
  return Value::SetOf(std::move(elements));
}

TEST(SetValueTest, ConstructionSortsAndDedups) {
  Value s = Value::SetOf({V("c2"), V("c1"), V("c2")});
  EXPECT_EQ(s.type(), ValueType::kSet);
  ASSERT_EQ(s.AsSet().size(), 2u);
  EXPECT_EQ(s.AsSet()[0], V("c1"));
  EXPECT_EQ(s.AsSet()[1], V("c2"));
}

TEST(SetValueTest, EqualityIsSetBased) {
  EXPECT_EQ(Prereq({"c1", "c2"}), Prereq({"c2", "c1"}));
  EXPECT_NE(Prereq({"c1"}), Prereq({"c1", "c2"}));
  EXPECT_NE(Prereq({"c1"}), V("c1"));  // A set is not its element.
}

TEST(SetValueTest, EmptySet) {
  Value empty = Value::SetOf({});
  EXPECT_EQ(empty.type(), ValueType::kSet);
  EXPECT_TRUE(empty.AsSet().empty());
  EXPECT_EQ(empty.ToString(), "{}");
}

TEST(SetValueTest, Ordering) {
  EXPECT_LT(Prereq({"c1"}), Prereq({"c1", "c2"}));
  EXPECT_LT(Prereq({"c1", "c2"}), Prereq({"c1", "c3"}));
  // Sets order after all scalar types (highest type tag).
  EXPECT_LT(V("zzz"), Prereq({"a"}));
}

TEST(SetValueTest, HashConsistent) {
  EXPECT_EQ(Prereq({"c2", "c1"}).Hash(), Prereq({"c1", "c2"}).Hash());
  EXPECT_NE(Prereq({"c1"}).Hash(), Prereq({"c2"}).Hash());
}

TEST(SetValueTest, ToString) {
  EXPECT_EQ(Prereq({"c2", "c1"}).ToString(), "{c1,c2}");
}

TEST(SetValueTest, SetsOfSetsNest) {
  // The paper's (c0, {{c1,c2},{c1,c3}}) — alternative prerequisite
  // conditions as a set of sets.
  Value alternatives =
      Value::SetOf({Prereq({"c1", "c2"}), Prereq({"c1", "c3"})});
  EXPECT_EQ(alternatives.AsSet().size(), 2u);
  EXPECT_EQ(alternatives.ToString(), "{{c1,c2},{c1,c3}}");
  EXPECT_EQ(alternatives,
            Value::SetOf({Prereq({"c1", "c3"}), Prereq({"c2", "c1"})}));
}

TEST(SetValueTest, SerdeRoundTrip) {
  for (const Value& v :
       {Prereq({"c1", "c2"}), Value::SetOf({}),
        Value::SetOf({Prereq({"a"}), Value::Int(3), V("mixed")})}) {
    BufferWriter w;
    EncodeValue(v, &w);
    BufferReader r(w.data());
    Result<Value> back = DecodeValue(&r);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(*back, v);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(SetValueTest, CompositionTreatsSetsAtomically) {
  // The §2 CP[Course, Prerequisite] discussion: (c0,{c1,c2}) and
  // (c0,{c1,c3}) are DIFFERENT prerequisite conditions; nesting over
  // Prerequisite collects the two set-values without merging their
  // contents.
  Schema schema({{"Course", ValueType::kString},
                 {"Prerequisite", ValueType::kSet}});
  FlatRelation cp(schema);
  cp.Insert(FlatTuple{V("c0"), Prereq({"c1", "c2"})});
  cp.Insert(FlatTuple{V("c0"), Prereq({"c1", "c3"})});
  NfrRelation nested = NestOn(NfrRelation::FromFlat(cp), 1);
  ASSERT_EQ(nested.size(), 1u);
  // The component holds two atomic sets, not three courses.
  EXPECT_EQ(nested.tuple(0).at(1).size(), 2u);
  EXPECT_TRUE(nested.tuple(0).at(1).Contains(Prereq({"c1", "c2"})));
  EXPECT_TRUE(nested.tuple(0).at(1).Contains(Prereq({"c1", "c3"})));
  EXPECT_FALSE(nested.tuple(0).at(1).Contains(V("c1")));
  // Round trip: expansion recovers the two original tuples (the sets
  // were never split).
  EXPECT_EQ(nested.Expand(), cp);
}

TEST(SetValueTest, CanonicalUpdatesWorkOnSetDomains) {
  Schema schema({{"Course", ValueType::kString},
                 {"Prerequisite", ValueType::kSet}});
  CanonicalRelation cp(schema, {1, 0});
  ASSERT_TRUE(cp.Insert(FlatTuple{V("c0"), Prereq({"c1", "c2"})}).ok());
  ASSERT_TRUE(cp.Insert(FlatTuple{V("c0"), Prereq({"c1", "c3"})}).ok());
  ASSERT_TRUE(cp.Insert(FlatTuple{V("c9"), Prereq({"c1", "c2"})}).ok());
  EXPECT_TRUE(cp.Contains(FlatTuple{V("c0"), Prereq({"c2", "c1"})}));
  ASSERT_TRUE(cp.Delete(FlatTuple{V("c0"), Prereq({"c1", "c3"})}).ok());
  // c0 and c9 now share the single condition {c1,c2}: canonical form
  // with Prerequisite nested first merges them on Course.
  EXPECT_EQ(cp.size(), 1u);
  EXPECT_EQ(cp.relation().tuple(0).at(0), (ValueSet{V("c0"), V("c9")}));
}

TEST(SetValueTest, NfrqlSetLiterals) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "nf2_setval_test").string();
  std::filesystem::remove_all(dir);
  auto db = Database::Open(dir);
  ASSERT_TRUE(db.ok());
  Executor executor(db->get());
  ASSERT_TRUE(executor
                  .Execute("CREATE RELATION cp (Course STRING, "
                           "Prereq SET) NEST Prereq, Course")
                  .ok());
  Result<std::string> inserted = executor.Execute(
      "INSERT INTO cp VALUES (c0, {c1, c2}), (c0, {c1, c3})");
  ASSERT_TRUE(inserted.ok()) << inserted.status();
  Result<std::string> shown = executor.Execute("SHOW cp");
  ASSERT_TRUE(shown.ok());
  EXPECT_NE(shown->find("{c1,c2}"), std::string::npos);
  // Selecting on the whole set value.
  Result<std::string> selected =
      executor.Execute("SELECT * FROM cp WHERE Prereq = {c2, c1}");
  ASSERT_TRUE(selected.ok()) << selected.status();
  EXPECT_NE(selected->find("1 row(s)"), std::string::npos);
  // Nested set literals.
  ASSERT_TRUE(
      executor.Execute("INSERT INTO cp VALUES (c7, {{a, b}, {c}})").ok());
  std::filesystem::remove_all(dir);
}

TEST(SetValueTest, NfrqlBadSetLiteralErrors) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "nf2_setval_err").string();
  std::filesystem::remove_all(dir);
  auto db = Database::Open(dir);
  ASSERT_TRUE(db.ok());
  Executor executor(db->get());
  ASSERT_TRUE(
      executor.Execute("CREATE RELATION r (A STRING, B SET)").ok());
  EXPECT_FALSE(executor.Execute("INSERT INTO r VALUES (x, {a, b)").ok());
  EXPECT_FALSE(executor.Execute("INSERT INTO r VALUES (x, {a,,b})").ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace nf2
