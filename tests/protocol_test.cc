// Frame-level tests of the nf2d wire protocol: codec round-trips, the
// batch payload codecs, and decoder robustness against garbage type
// bytes, truncated headers, and hostile length announcements — all over
// real socketpairs, no server needed.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <random>
#include <string>
#include <vector>

#include "server/protocol.h"
#include "util/string_util.h"

namespace nf2 {
namespace {

using server::DecodeBatchReply;
using server::DecodeBatchRequest;
using server::EncodeBatchReply;
using server::EncodeBatchRequest;
using server::Frame;
using server::FrameType;
using server::IsKnownFrameType;
using server::ReadFrame;
using server::WriteFrame;

/// A connected AF_UNIX socket pair; fd(0) writes, fd(1) reads.
class SocketPair {
 public:
  SocketPair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0); }
  ~SocketPair() {
    CloseWrite();
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  int writer() const { return fds_[0]; }
  int reader() const { return fds_[1]; }
  /// Closes the write side so the reader observes EOF.
  void CloseWrite() {
    if (fds_[0] >= 0) ::close(fds_[0]);
    fds_[0] = -1;
  }
  void SendRaw(const std::string& bytes) {
    ASSERT_EQ(::send(fds_[0], bytes.data(), bytes.size(), 0),
              static_cast<ssize_t>(bytes.size()));
  }

 private:
  int fds_[2] = {-1, -1};
};

std::string RawHeader(uint32_t len, uint8_t type) {
  std::string h;
  h.push_back(static_cast<char>(len & 0xff));
  h.push_back(static_cast<char>((len >> 8) & 0xff));
  h.push_back(static_cast<char>((len >> 16) & 0xff));
  h.push_back(static_cast<char>((len >> 24) & 0xff));
  h.push_back(static_cast<char>(type));
  return h;
}

TEST(ProtocolTest, FrameRoundTripEveryKnownType) {
  const FrameType kTypes[] = {
      FrameType::kQuery, FrameType::kPing,  FrameType::kQuit,
      FrameType::kBatch, FrameType::kOk,    FrameType::kError,
      FrameType::kBusy,  FrameType::kPong,  FrameType::kBye,
      FrameType::kBatchReply};
  for (FrameType type : kTypes) {
    SocketPair pair;
    const std::string payload = StrCat("payload for type ",
                                       static_cast<int>(type));
    ASSERT_TRUE(WriteFrame(pair.writer(), type, payload).ok());
    auto frame = ReadFrame(pair.reader());
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_TRUE(frame->has_value());
    EXPECT_EQ((*frame)->type, type);
    EXPECT_EQ((*frame)->payload, payload);
  }
}

TEST(ProtocolTest, CleanEofBetweenFramesIsNullopt) {
  SocketPair pair;
  pair.CloseWrite();
  auto frame = ReadFrame(pair.reader());
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_FALSE(frame->has_value());
}

TEST(ProtocolTest, UnknownTypeByteIsCorruptionNamingTheByte) {
  SocketPair pair;
  pair.SendRaw(RawHeader(0, 0x2a));
  auto frame = ReadFrame(pair.reader());
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
  // The error names the offending byte, decimal and hex.
  EXPECT_NE(frame.status().message().find("42"), std::string::npos)
      << frame.status().ToString();
  EXPECT_NE(frame.status().message().find("0x2a"), std::string::npos)
      << frame.status().ToString();
}

TEST(ProtocolTest, EveryUnknownTypeByteIsRejected) {
  for (int b = 0; b <= 0xff; ++b) {
    SocketPair pair;
    pair.SendRaw(RawHeader(0, static_cast<uint8_t>(b)));
    auto frame = ReadFrame(pair.reader());
    if (IsKnownFrameType(static_cast<uint8_t>(b))) {
      ASSERT_TRUE(frame.ok()) << "byte " << b << ": "
                              << frame.status().ToString();
      ASSERT_TRUE(frame->has_value());
    } else {
      ASSERT_FALSE(frame.ok()) << "byte " << b << " decoded as a frame";
      EXPECT_EQ(frame.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST(ProtocolTest, TruncatedHeaderIsIoError) {
  for (size_t cut = 1; cut < 5; ++cut) {
    SocketPair pair;
    pair.SendRaw(RawHeader(3, static_cast<uint8_t>(FrameType::kQuery))
                     .substr(0, cut));
    pair.CloseWrite();
    auto frame = ReadFrame(pair.reader());
    ASSERT_FALSE(frame.ok()) << "cut at " << cut;
    EXPECT_EQ(frame.status().code(), StatusCode::kIOError);
  }
}

TEST(ProtocolTest, TruncatedPayloadIsIoError) {
  SocketPair pair;
  pair.SendRaw(RawHeader(10, static_cast<uint8_t>(FrameType::kQuery)));
  pair.SendRaw("four");
  pair.CloseWrite();
  auto frame = ReadFrame(pair.reader());
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kIOError);
}

TEST(ProtocolTest, MaximumLengthAnnouncementIsRejectedWithoutReading) {
  // One over the cap — and also the all-ones prefix a fuzzer would find.
  for (uint32_t len : {server::kMaxFramePayload + 1, 0xffffffffu}) {
    SocketPair pair;
    pair.SendRaw(RawHeader(len, static_cast<uint8_t>(FrameType::kQuery)));
    // No payload follows; the reader must fail on the announcement
    // alone rather than blocking for 4 GiB that will never arrive.
    auto frame = ReadFrame(pair.reader());
    ASSERT_FALSE(frame.ok());
    EXPECT_EQ(frame.status().code(), StatusCode::kIOError);
    EXPECT_NE(frame.status().message().find("limit"), std::string::npos);
  }
}

TEST(ProtocolTest, RandomHeaderFuzzNeverCrashesOrOverreads) {
  std::mt19937 rng(20260806);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> extra(0, 32);
  for (int i = 0; i < 2000; ++i) {
    std::string bytes;
    for (int b = 0; b < 5; ++b) {
      bytes.push_back(static_cast<char>(byte(rng)));
    }
    const int tail = extra(rng);
    for (int b = 0; b < tail; ++b) {
      bytes.push_back(static_cast<char>(byte(rng)));
    }
    SocketPair pair;
    pair.SendRaw(bytes);
    pair.CloseWrite();
    // Must terminate with a frame or a typed error — never hang, crash,
    // or read out of bounds (ASan watches the latter).
    auto frame = ReadFrame(pair.reader());
    if (frame.ok() && frame->has_value()) {
      EXPECT_TRUE(IsKnownFrameType(static_cast<uint8_t>((*frame)->type)));
      EXPECT_LE((*frame)->payload.size(), static_cast<size_t>(tail));
    }
  }
}

TEST(ProtocolTest, BatchRequestRoundTrip) {
  const std::vector<std::string> statements = {
      "SELECT COUNT(*) FROM r", "", "INSERT INTO r VALUES (x)",
      std::string(1000, 'q')};
  auto decoded = DecodeBatchRequest(EncodeBatchRequest(statements));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, statements);

  auto empty = DecodeBatchRequest(EncodeBatchRequest({}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(ProtocolTest, BatchRequestDecodeRejectsHostilePayloads) {
  // Truncated count.
  EXPECT_EQ(DecodeBatchRequest("ab").status().code(), StatusCode::kCorruption);
  // Count over the limit.
  std::string huge_count;
  for (char c : {'\xff', '\xff', '\xff', '\x7f'}) huge_count.push_back(c);
  EXPECT_EQ(DecodeBatchRequest(huge_count).status().code(),
            StatusCode::kCorruption);
  // Inner length announcing more than the payload ships.
  std::string lying = EncodeBatchRequest({"hello"});
  lying[4] = '\x7f';  // Statement length low byte: 5 -> 127.
  EXPECT_EQ(DecodeBatchRequest(lying).status().code(),
            StatusCode::kCorruption);
  // Trailing garbage after the last statement.
  std::string trailing = EncodeBatchRequest({"hello"});
  trailing.push_back('!');
  EXPECT_EQ(DecodeBatchRequest(trailing).status().code(),
            StatusCode::kCorruption);
}

TEST(ProtocolTest, BatchReplyRoundTripPreservesOutcomeKinds) {
  std::vector<Result<std::string>> results;
  results.emplace_back(std::string("ok text"));
  results.emplace_back(Status::NotFound("no relation r"));
  results.emplace_back(Status::Unavailable("txn held"));
  results.emplace_back(std::string(""));
  auto decoded = DecodeBatchReply(EncodeBatchReply(results));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->size(), 4u);
  ASSERT_TRUE((*decoded)[0].ok());
  EXPECT_EQ(*(*decoded)[0], "ok text");
  ASSERT_FALSE((*decoded)[1].ok());
  EXPECT_EQ((*decoded)[1].status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*decoded)[1].status().message(), "no relation r");
  ASSERT_FALSE((*decoded)[2].ok());
  EXPECT_EQ((*decoded)[2].status().code(), StatusCode::kUnavailable);
  EXPECT_EQ((*decoded)[2].status().message(), "txn held");
  ASSERT_TRUE((*decoded)[3].ok());
  EXPECT_EQ(*(*decoded)[3], "");
}

TEST(ProtocolTest, BatchReplyDecodeRejectsUnknownTagAndTruncation) {
  std::vector<Result<std::string>> one;
  one.emplace_back(std::string("x"));
  std::string bad_tag = EncodeBatchReply(one);
  bad_tag[4] = '\x09';  // Entry tag 0 -> 9.
  EXPECT_EQ(DecodeBatchReply(bad_tag).status().code(),
            StatusCode::kCorruption);

  std::string truncated = EncodeBatchReply(one);
  truncated.pop_back();
  EXPECT_EQ(DecodeBatchReply(truncated).status().code(),
            StatusCode::kCorruption);
}

TEST(ProtocolTest, StatusPayloadRoundTripsEveryCode) {
  for (int code = 1; code <= static_cast<int>(StatusCode::kUnavailable);
       ++code) {
    Status in(static_cast<StatusCode>(code), "message text");
    Status out = server::DecodeStatusPayload(server::EncodeStatusPayload(in));
    EXPECT_EQ(out, in);
  }
}

}  // namespace
}  // namespace nf2
