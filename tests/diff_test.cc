#include <gtest/gtest.h>

#include <filesystem>

#include "core/diff.h"
#include "engine/database.h"
#include "storage/table.h"
#include "tests/test_util.h"

namespace nf2 {
namespace {

TEST(DiffTest, ComputesMinimalScript) {
  FlatRelation from = MakeStringRelation({"A", "B"}, {{"a1", "b1"},
                                                      {"a2", "b1"},
                                                      {"a3", "b2"}});
  FlatRelation to = MakeStringRelation({"A", "B"}, {{"a2", "b1"},
                                                    {"a3", "b9"},
                                                    {"a4", "b4"}});
  Result<UpdateScript> script = ComputeDiff(from, to);
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->deletes.size(), 2u);  // (a1,b1), (a3,b2).
  EXPECT_EQ(script->inserts.size(), 2u);  // (a3,b9), (a4,b4).
  EXPECT_EQ(script->size(), 4u);
  std::string text = script->ToString();
  EXPECT_NE(text.find("- (a1, b1)"), std::string::npos);
  EXPECT_NE(text.find("+ (a4, b4)"), std::string::npos);
}

TEST(DiffTest, IdenticalRelationsYieldEmptyScript) {
  FlatRelation r = MakeStringRelation({"A"}, {{"x"}, {"y"}});
  Result<UpdateScript> script = ComputeDiff(r, r);
  ASSERT_TRUE(script.ok());
  EXPECT_TRUE(script->empty());
}

TEST(DiffTest, SchemaMismatchErrors) {
  FlatRelation a(Schema::OfStrings({"A"}));
  FlatRelation b(Schema::OfStrings({"B"}));
  EXPECT_FALSE(ComputeDiff(a, b).ok());
}

TEST(DiffTest, ApplyScriptReachesTarget) {
  Rng rng(71);
  FlatRelation from = RandomFlatRelation(&rng, 3, 3, 15);
  FlatRelation to = RandomFlatRelation(&rng, 3, 3, 15);
  Permutation perm{1, 2, 0};
  Result<CanonicalRelation> rel = CanonicalRelation::FromFlat(from, perm);
  ASSERT_TRUE(rel.ok());
  Result<UpdateScript> script = ComputeDiff(from, to);
  ASSERT_TRUE(script.ok());
  ASSERT_TRUE(ApplyScript(*script, &*rel).ok());
  EXPECT_EQ(rel->relation().Expand(), to);
  // Still canonical after the bulk change.
  EXPECT_TRUE(rel->relation().EqualsAsSet(CanonicalForm(to, perm)));
}

TEST(DiffTest, SyncToIsIdempotent) {
  Rng rng(72);
  FlatRelation start = RandomFlatRelation(&rng, 3, 3, 12);
  FlatRelation target = RandomFlatRelation(&rng, 3, 3, 12);
  Result<CanonicalRelation> rel =
      CanonicalRelation::FromFlat(start, {0, 1, 2});
  ASSERT_TRUE(rel.ok());
  Result<size_t> first = SyncTo(target, &*rel);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(rel->relation().Expand(), target);
  Result<size_t> second = SyncTo(target, &*rel);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 0u);
}

TEST(DiffTest, SyncPropertySweep) {
  Rng rng(73);
  for (int trial = 0; trial < 10; ++trial) {
    FlatRelation a = RandomFlatRelation(&rng, 3, 3, 10);
    FlatRelation b = RandomFlatRelation(&rng, 3, 3, 14);
    Result<CanonicalRelation> rel =
        CanonicalRelation::FromFlat(a, {2, 0, 1});
    ASSERT_TRUE(rel.ok());
    ASSERT_TRUE(SyncTo(b, &*rel).ok());
    ASSERT_EQ(rel->relation().Expand(), b);
    ASSERT_TRUE(rel->relation().Validate().ok());
  }
}

TEST(VacuumTest, ReclaimsTombstoneSpace) {
  auto dir = std::filesystem::temp_directory_path() / "nf2_vacuum_test";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  std::string path = (dir / "r.tbl").string();
  Schema schema = Schema::OfStrings({"A"});
  auto table = Table::Create(path, schema, {0});
  ASSERT_TRUE(table.ok());
  std::vector<RecordId> rids;
  for (int i = 0; i < 500; ++i) {
    Result<RecordId> rid = (*table)->Append(
        NfrTuple{ValueSet(V(StrCat("value_with_padding_", i).c_str()))});
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  // Tombstone most of them.
  for (size_t i = 0; i < rids.size(); ++i) {
    if (i % 10 != 0) {
      ASSERT_TRUE((*table)->Erase(rids[i]).ok());
    }
  }
  ASSERT_TRUE((*table)->Flush().ok());
  uintmax_t before = std::filesystem::file_size(path);
  Result<size_t> kept = (*table)->Vacuum();
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(*kept, 50u);
  uintmax_t after = std::filesystem::file_size(path);
  EXPECT_LT(after, before / 2);
  // Contents intact.
  auto all = (*table)->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 50u);
  std::filesystem::remove_all(dir);
}

TEST(VerifyIntegrityTest, PassesOnHealthyDatabase) {
  auto dir = (std::filesystem::temp_directory_path() /
              "nf2_integrity_test")
                 .string();
  std::filesystem::remove_all(dir);
  auto db = Database::Open(dir);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)
                  ->CreateRelation("r", Schema::OfStrings({"A", "B"}),
                                   /*nest_order=*/{},
                                   {Fd{AttrSet{0}, AttrSet{1}}})
                  .ok());
  ASSERT_TRUE((*db)->Insert("r", FlatTuple{V("a1"), V("b1")}).ok());
  ASSERT_TRUE((*db)->Insert("r", FlatTuple{V("a2"), V("b1")}).ok());
  EXPECT_TRUE((*db)->VerifyIntegrity().ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace nf2
