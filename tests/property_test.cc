// Cross-cutting property-based tests: algebraic laws the paper's
// machinery must satisfy on arbitrary relations, swept over seeds with
// TEST_P. These complement the per-module tests with deeper invariants.

#include <gtest/gtest.h>

#include "algebra/operators.h"
#include "core/compose.h"
#include "core/fixedness.h"
#include "core/irreducible.h"
#include "core/nest.h"
#include "core/update.h"
#include "dependency/mvd.h"
#include "dependency/normalize.h"
#include "storage/serde.h"
#include "tests/test_util.h"

namespace nf2 {
namespace {

class PropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  FlatRelation Random(size_t degree, size_t domain, size_t rows,
                      uint64_t salt = 0) {
    Rng rng(GetParam() * 1315423911u + salt);
    return RandomFlatRelation(&rng, degree, domain, rows);
  }
};

// ---- Composition / decomposition laws ---------------------------------

TEST_P(PropertyTest, RandomDecomposeSequencePreservesExpansion) {
  // Any sequence of decompositions partitions R*: total expansion is
  // invariant and tuples stay pairwise disjoint.
  FlatRelation flat = Random(3, 3, 10);
  NfrRelation rel = CanonicalForm(flat, {0, 1, 2});
  Rng rng(GetParam() + 99);
  for (int step = 0; step < 12 && rel.size() > 0; ++step) {
    size_t idx = rng.NextBelow(rel.size());
    const NfrTuple& t = rel.tuple(idx);
    // Pick a compound component to split, if any.
    std::vector<size_t> compound;
    for (size_t a = 0; a < t.degree(); ++a) {
      if (!t.at(a).IsSingleton()) compound.push_back(a);
    }
    if (compound.empty()) continue;
    size_t attr = compound[rng.NextBelow(compound.size())];
    const Value v = t.at(attr)[rng.NextBelow(t.at(attr).size())];
    Result<Decomposition> split = Decompose(t, attr, v);
    ASSERT_TRUE(split.ok());
    rel.RemoveAt(idx);
    rel.Add(split->extracted);
    rel.Add(split->remainder);
    ASSERT_TRUE(rel.Validate().ok());
    ASSERT_EQ(rel.Expand(), flat);
  }
}

TEST_P(PropertyTest, GreedyRecompositionRecoversSomeIrreducible) {
  // After arbitrary decomposition churn, reduction still reaches an
  // irreducible form with the same R*.
  FlatRelation flat = Random(3, 3, 12, 1);
  NfrRelation shredded = NfrRelation::FromFlat(flat);  // Fully split.
  NfrRelation reduced = ReduceGreedy(shredded);
  EXPECT_TRUE(IsIrreducible(reduced));
  EXPECT_EQ(reduced.Expand(), flat);
  EXPECT_LE(reduced.size(), flat.size());
}

// ---- Nest / canonical laws ---------------------------------------------

TEST_P(PropertyTest, CanonicalFormIsIdempotent) {
  FlatRelation flat = Random(3, 3, 14, 2);
  for (const Permutation& perm : AllPermutations(3)) {
    NfrRelation canonical = CanonicalForm(flat, perm);
    NfrRelation again = NestSequence(canonical, perm);
    EXPECT_TRUE(canonical.EqualsAsSet(again));
  }
}

TEST_P(PropertyTest, AnyNestSequencePreservesInformation) {
  FlatRelation flat = Random(4, 2, 12, 3);
  Rng rng(GetParam() + 777);
  NfrRelation rel = NfrRelation::FromFlat(flat);
  for (int step = 0; step < 8; ++step) {
    size_t attr = rng.NextBelow(4);
    rel = rng.NextBool() ? NestOn(rel, attr) : UnnestOn(rel, attr);
    ASSERT_EQ(rel.Expand(), flat) << "step " << step;
    ASSERT_TRUE(rel.Validate().ok());
  }
}

TEST_P(PropertyTest, CanonicalNeverLargerThanFlat) {
  FlatRelation flat = Random(3, 4, 16, 4);
  for (const Permutation& perm : AllPermutations(3)) {
    EXPECT_LE(CanonicalForm(flat, perm).size(), flat.size());
  }
}

TEST_P(PropertyTest, IrreducibleAtMostCanonicalMinimum) {
  FlatRelation flat = Random(3, 2, 7, 5);
  Result<NfrRelation> minimal = MinimalIrreducible(flat);
  ASSERT_TRUE(minimal.ok());
  EXPECT_LE(minimal->size(), MinCanonicalSize(flat));
}

// ---- Fixedness laws -----------------------------------------------------

TEST_P(PropertyTest, FixednessIsMonotoneInAttributes) {
  // Fixed on F implies fixed on every superset of F.
  FlatRelation flat = Random(3, 3, 10, 6);
  NfrRelation rel = CanonicalForm(flat, {1, 0, 2});
  for (uint64_t mask = 1; mask < 8; ++mask) {
    AttrSet f;
    for (size_t i = 0; i < 3; ++i) {
      if ((mask >> i) & 1) f.Add(i);
    }
    if (!IsFixedOn(rel, f)) continue;
    for (uint64_t super = mask; super < 8; ++super) {
      if ((super & mask) != mask) continue;
      AttrSet g;
      for (size_t i = 0; i < 3; ++i) {
        if ((super >> i) & 1) g.Add(i);
      }
      EXPECT_TRUE(IsFixedOn(rel, g))
          << "fixed on " << mask << " but not superset " << super;
    }
  }
}

// ---- Dependency laws ----------------------------------------------------

TEST_P(PropertyTest, ArmstrongAxiomsHoldInClosure) {
  Rng rng(GetParam() + 31);
  FdSet fds(5);
  for (int i = 0; i < 4; ++i) {
    AttrSet lhs, rhs;
    lhs.Add(rng.NextBelow(5));
    if (rng.NextBool()) lhs.Add(rng.NextBelow(5));
    rhs.Add(rng.NextBelow(5));
    fds.Add(lhs, rhs);
  }
  // Reflexivity: X -> X' for X' ⊆ X.
  AttrSet x{0, 2};
  EXPECT_TRUE(fds.Implies(Fd{x, AttrSet{2}}));
  // Augmentation: if X->Y then XZ->YZ.
  for (const Fd& fd : fds.fds()) {
    AttrSet z{4};
    EXPECT_TRUE(fds.Implies(Fd{fd.lhs.Union(z), fd.rhs.Union(z)}));
  }
  // Transitivity via closure: closure is itself closed.
  AttrSet closure = fds.Closure(x);
  EXPECT_EQ(fds.Closure(closure), closure);
}

TEST_P(PropertyTest, MvdComplementationLaw) {
  // X ->-> Y holds iff X ->-> (U - X - Y) holds.
  FlatRelation flat = Random(3, 3, 10, 7);
  Mvd mvd{AttrSet{0}, AttrSet{1}};
  Mvd complement{AttrSet{0}, AttrSet{2}};
  EXPECT_EQ(Satisfies(flat, mvd), Satisfies(flat, complement));
}

TEST_P(PropertyTest, FaginTheoremBinaryJoin) {
  // X ->-> Y holds iff R = R[XY] |x| R[XZ].
  FlatRelation flat = Random(3, 3, 10, 8);
  Mvd mvd{AttrSet{0}, AttrSet{1}};
  FlatRelation xy = ProjectRelation(flat, {0, 1});
  FlatRelation xz = ProjectRelation(flat, {0, 2});
  FlatRelation joined = NaturalJoin(xy, xz);
  EXPECT_EQ(Satisfies(flat, mvd), joined == flat);
}

TEST_P(PropertyTest, MinimalCoverPreservesClosure) {
  Rng rng(GetParam() + 61);
  FdSet fds(4);
  for (int i = 0; i < 5; ++i) {
    AttrSet lhs, rhs;
    lhs.Add(rng.NextBelow(4));
    lhs.Add(rng.NextBelow(4));
    rhs.Add(rng.NextBelow(4));
    fds.Add(lhs, rhs);
  }
  FdSet cover = fds.MinimalCover();
  for (uint64_t mask = 0; mask < 16; ++mask) {
    AttrSet x;
    for (size_t i = 0; i < 4; ++i) {
      if ((mask >> i) & 1) x.Add(i);
    }
    EXPECT_EQ(fds.Closure(x), cover.Closure(x)) << "mask " << mask;
  }
}

TEST_P(PropertyTest, Synthesize3NFIsDependencyPreserving) {
  Rng rng(GetParam() + 71);
  FdSet fds(4);
  for (int i = 0; i < 3; ++i) {
    AttrSet lhs, rhs;
    lhs.Add(rng.NextBelow(4));
    rhs.Add(rng.NextBelow(4));
    if (lhs == rhs) continue;
    fds.Add(lhs, rhs);
  }
  std::vector<SubScheme> schemes = Synthesize3NF(fds);
  // The union of the schemes' FDs implies every original FD.
  FdSet combined(4);
  for (const SubScheme& scheme : schemes) {
    for (const Fd& fd : scheme.fds) {
      combined.Add(fd);
    }
  }
  for (const Fd& fd : fds.fds()) {
    EXPECT_TRUE(combined.Implies(fd));
  }
}

// ---- Algebra laws ---------------------------------------------------------

TEST_P(PropertyTest, SelectCommutesWithUnion) {
  FlatRelation a = Random(2, 4, 8, 9);
  FlatRelation b = Random(2, 4, 8, 10);
  Predicate p = Predicate::Eq(0, V("v0_1"));
  Result<FlatRelation> u = Union(a, b);
  ASSERT_TRUE(u.ok());
  Result<FlatRelation> lhs = Union(Select(a, p), Select(b, p));
  ASSERT_TRUE(lhs.ok());
  EXPECT_EQ(Select(*u, p), *lhs);
}

TEST_P(PropertyTest, SelectOnNfrEqualsSelectOnFlat) {
  FlatRelation flat = Random(3, 3, 14, 11);
  NfrRelation nested = CanonicalForm(flat, {2, 0, 1});
  Rng rng(GetParam() + 4);
  Predicate p = Predicate::Or(
      Predicate::Eq(0, V(StrCat("v0_", rng.NextBelow(3)).c_str())),
      Predicate::Ne(2, V(StrCat("v2_", rng.NextBelow(3)).c_str())));
  EXPECT_EQ(SelectNfrExact(nested, p).Expand(), Select(flat, p));
}

TEST_P(PropertyTest, ProjectNfrDenotesProjectedExpansion) {
  FlatRelation flat = Random(3, 3, 12, 12);
  NfrRelation nested = CanonicalForm(flat, {0, 2, 1});
  NfrRelation projected = ProjectNfr(nested, {1, 0});
  EXPECT_EQ(projected.Expand(), ProjectRelation(flat, {1, 0}));
}

TEST_P(PropertyTest, DifferenceThenUnionRestores) {
  FlatRelation a = Random(2, 4, 10, 13);
  FlatRelation b = Random(2, 4, 10, 14);
  Result<FlatRelation> diff = Difference(a, b);
  Result<FlatRelation> inter = Intersect(a, b);
  ASSERT_TRUE(diff.ok() && inter.ok());
  Result<FlatRelation> restored = Union(*diff, *inter);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, a);
}

// ---- Serialization totality ---------------------------------------------

TEST_P(PropertyTest, SerdeRoundTripsArbitraryRelations) {
  Rng rng(GetParam() + 5);
  // Mixed-type schema including set values.
  Schema schema({{"S", ValueType::kString},
                 {"I", ValueType::kInt},
                 {"T", ValueType::kSet}});
  FlatRelation flat(schema);
  for (int i = 0; i < 10; ++i) {
    flat.Insert(FlatTuple{
        V(StrCat("s", rng.NextBelow(4)).c_str()),
        Value::Int(rng.NextInRange(-5, 5)),
        Value::SetOf({V(StrCat("t", rng.NextBelow(3)).c_str()),
                      Value::Int(rng.NextInRange(0, 2))})});
  }
  NfrRelation nested = CanonicalForm(flat, {2, 1, 0});
  BufferWriter w;
  EncodeNfrRelation(nested, &w);
  BufferReader r(w.data());
  Result<NfrRelation> back = DecodeNfrRelation(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->EqualsAsSet(nested));
}

// ---- Update-algorithm laws ------------------------------------------------

TEST_P(PropertyTest, InsertDeleteIsIdentity) {
  FlatRelation flat = Random(3, 3, 12, 15);
  Permutation perm{1, 2, 0};
  Result<CanonicalRelation> rel = CanonicalRelation::FromFlat(flat, perm);
  ASSERT_TRUE(rel.ok());
  NfrRelation before = rel->relation();
  FlatTuple probe{V("fresh_a"), V("fresh_b"), V("fresh_c")};
  ASSERT_TRUE(rel->Insert(probe).ok());
  ASSERT_TRUE(rel->Delete(probe).ok());
  EXPECT_TRUE(rel->relation().EqualsAsSet(before));
}

TEST_P(PropertyTest, DeleteInsertIsIdentity) {
  FlatRelation flat = Random(3, 3, 12, 16);
  if (flat.empty()) return;
  Permutation perm{0, 2, 1};
  Result<CanonicalRelation> rel = CanonicalRelation::FromFlat(flat, perm);
  ASSERT_TRUE(rel.ok());
  NfrRelation before = rel->relation();
  Rng rng(GetParam() + 6);
  FlatTuple victim = flat.tuple(rng.NextBelow(flat.size()));
  ASSERT_TRUE(rel->Delete(victim).ok());
  ASSERT_TRUE(rel->Insert(victim).ok());
  EXPECT_TRUE(rel->relation().EqualsAsSet(before));
}

TEST_P(PropertyTest, InsertionOrderIrrelevant) {
  // Theorem 2 consequence: building by incremental inserts in any order
  // yields the same canonical relation.
  FlatRelation flat = Random(3, 3, 10, 17);
  Permutation perm{2, 1, 0};
  std::vector<FlatTuple> tuples = flat.tuples();
  Rng rng(GetParam() + 7);
  rng.Shuffle(&tuples);
  CanonicalRelation shuffled(flat.schema(), perm);
  for (const FlatTuple& t : tuples) {
    ASSERT_TRUE(shuffled.Insert(t).ok());
  }
  EXPECT_TRUE(shuffled.relation().EqualsAsSet(CanonicalForm(flat, perm)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Range<uint64_t>(0, 15));

}  // namespace
}  // namespace nf2
