#include <gtest/gtest.h>

#include "algebra/operators.h"
#include "core/nest.h"
#include "dependency/mvd.h"
#include "dependency/normalize.h"
#include "tests/test_util.h"

namespace nf2 {
namespace {

Schema Scc() { return Schema::OfStrings({"Student", "Course", "Club"}); }

// The §2 motivating relation R1: each student takes a set of courses
// and belongs to a set of clubs, independently -> MVD
// Student ->-> Course | Club.
FlatRelation R1Flat() {
  return MakeStringRelation(
      {"Student", "Course", "Club"},
      {{"s1", "c1", "b1"}, {"s1", "c2", "b1"}, {"s1", "c3", "b1"},
       {"s2", "c1", "b2"}, {"s2", "c2", "b2"}, {"s2", "c3", "b2"},
       {"s3", "c1", "b1"}, {"s3", "c2", "b1"}, {"s3", "c3", "b1"}});
}

// R2 from Fig. 1: Student takes Course in Semester; no MVD.
FlatRelation R2Flat() {
  return MakeStringRelation(
      {"Student", "Course", "Semester"},
      {{"s1", "c1", "t1"}, {"s2", "c1", "t1"}, {"s3", "c1", "t1"},
       {"s1", "c2", "t1"}, {"s2", "c2", "t1"}, {"s3", "c2", "t1"},
       {"s1", "c3", "t1"}, {"s3", "c3", "t1"}, {"s2", "c3", "t2"}});
}

TEST(MvdTest, Complement) {
  Mvd mvd{AttrSet{0}, AttrSet{1}};
  EXPECT_EQ(mvd.Complement(3), (AttrSet{2}));
  EXPECT_EQ(mvd.Complement(4), (AttrSet{2, 3}));
}

TEST(MvdTest, TrivialCases) {
  EXPECT_TRUE((Mvd{AttrSet{0, 1}, AttrSet{1}}).IsTrivial(3));  // Y ⊆ X.
  EXPECT_TRUE((Mvd{AttrSet{0}, AttrSet{1, 2}}).IsTrivial(3));  // X∪Y = U.
  EXPECT_FALSE((Mvd{AttrSet{0}, AttrSet{1}}).IsTrivial(3));
}

TEST(MvdTest, ToString) {
  EXPECT_EQ((Mvd{AttrSet{0}, AttrSet{1}}).ToString(Scc()),
            "{Student}->->{Course}|{Club}");
}

TEST(MvdTest, PaperR1SatisfiesStudentMvd) {
  // "we have a Multivalued Dependency Student ->-> Course | Club in R1,
  // but no MVD in R2" (§2).
  EXPECT_TRUE(Satisfies(R1Flat(), Mvd{AttrSet{0}, AttrSet{1}}));
  EXPECT_TRUE(Satisfies(R1Flat(), Mvd{AttrSet{0}, AttrSet{2}}));
}

TEST(MvdTest, PaperR2ViolatesStudentMvd) {
  // s2 takes c3 only in t2 while other courses are in t1: the cross
  // product property fails.
  EXPECT_FALSE(Satisfies(R2Flat(), Mvd{AttrSet{0}, AttrSet{1}}));
}

TEST(MvdTest, Example3MvdHolds) {
  // Example 3: R9 over A,B,C with MVD A ->-> B|C.
  FlatRelation r9 = MakeStringRelation({"A", "B", "C"},
                                       {{"a1", "b1", "c1"},
                                        {"a1", "b2", "c1"},
                                        {"a2", "b1", "c1"},
                                        {"a2", "b1", "c2"}});
  EXPECT_TRUE(Satisfies(r9, Mvd{AttrSet{0}, AttrSet{1}}));
}

TEST(MvdTest, FdPromotionIsAlwaysSatisfiedWhenFdHolds) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    FlatRelation rel = RandomFlatRelation(&rng, 3, 3, 10);
    Fd fd{AttrSet{0}, AttrSet{1}};
    if (Satisfies(rel, fd)) {
      EXPECT_TRUE(Satisfies(rel, PromoteToMvd(fd)));
    }
  }
}

TEST(MvdTest, TrivialMvdsAlwaysSatisfied) {
  Rng rng(6);
  for (int trial = 0; trial < 10; ++trial) {
    FlatRelation rel = RandomFlatRelation(&rng, 3, 3, 12);
    EXPECT_TRUE(Satisfies(rel, Mvd{AttrSet{0}, AttrSet{1, 2}}));
    EXPECT_TRUE(Satisfies(rel, Mvd{AttrSet{0, 1}, AttrSet{1}}));
  }
}

TEST(MvdSetTest, SatisfiedBy) {
  MvdSet mvds(3);
  mvds.Add(AttrSet{0}, AttrSet{1});
  EXPECT_TRUE(mvds.SatisfiedBy(R1Flat()));
  EXPECT_FALSE(mvds.SatisfiedBy(R2Flat()));
}

TEST(MvdSetTest, ToString) {
  MvdSet mvds(3);
  mvds.Add(AttrSet{0}, AttrSet{1});
  EXPECT_EQ(mvds.ToString(Scc()), "{{Student}->->{Course}|{Club}}");
}

TEST(MvdTest, MvdEnablesLosslessBinarySplit) {
  // Fagin's theorem: X ->-> Y holds iff R = R[XY] |x| R[XZ].
  FlatRelation r1 = R1Flat();
  FlatRelation xy = ProjectRelation(r1, {0, 1});
  FlatRelation xz = ProjectRelation(r1, {0, 2});
  EXPECT_EQ(NaturalJoin(xy, xz).size(), r1.size());
  // And for R2 (no MVD) the join is lossy (produces spurious tuples).
  FlatRelation r2 = R2Flat();
  FlatRelation xy2 = ProjectRelation(r2, {0, 1});
  FlatRelation xz2 = ProjectRelation(r2, {0, 2});
  EXPECT_GT(NaturalJoin(xy2, xz2).size(), r2.size());
}

TEST(MvdTest, NfrSingleTuplePerGroupUnderMvd) {
  // Under Student ->-> Course | Club, nesting Course then Club packs
  // each student into ONE tuple — the paper's entity-relation reading
  // of R1.
  FlatRelation r1 = R1Flat();
  NfrRelation nested =
      NestSequence(NfrRelation::FromFlat(r1), Permutation{1, 2, 0});
  EXPECT_EQ(nested.size(), 2u);  // s1,s3 share club+courses; s2 alone.
  // Every student appears in exactly one tuple.
  for (const char* student : {"s1", "s2", "s3"}) {
    size_t count = 0;
    for (const NfrTuple& t : nested.tuples()) {
      if (t.at(0).Contains(V(student))) ++count;
    }
    EXPECT_EQ(count, 1u) << student;
  }
}

}  // namespace
}  // namespace nf2
