#include <gtest/gtest.h>

#include "core/format.h"
#include "core/relation.h"

namespace nf2 {
namespace {

FlatRelation Example1Flat() {
  // Example 1's four tuples over A, B.
  return MakeStringRelation({"A", "B"}, {{"a1", "b1"},
                                         {"a2", "b1"},
                                         {"a2", "b2"},
                                         {"a3", "b2"}});
}

TEST(FlatRelationTest, ConstructionSortsAndDedups) {
  FlatRelation r = MakeStringRelation(
      {"A"}, {{"b"}, {"a"}, {"b"}});
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.tuple(0), (FlatTuple{V("a")}));
  EXPECT_EQ(r.tuple(1), (FlatTuple{V("b")}));
}

TEST(FlatRelationTest, InsertEraseContains) {
  FlatRelation r(Schema::OfStrings({"A", "B"}));
  EXPECT_TRUE(r.Insert(FlatTuple{V("a1"), V("b1")}));
  EXPECT_FALSE(r.Insert(FlatTuple{V("a1"), V("b1")}));
  EXPECT_TRUE(r.Contains(FlatTuple{V("a1"), V("b1")}));
  EXPECT_TRUE(r.Erase(FlatTuple{V("a1"), V("b1")}));
  EXPECT_FALSE(r.Erase(FlatTuple{V("a1"), V("b1")}));
  EXPECT_TRUE(r.empty());
}

TEST(FlatRelationTest, Equality) {
  EXPECT_EQ(Example1Flat(), Example1Flat());
  FlatRelation other = Example1Flat();
  other.Insert(FlatTuple{V("a9"), V("b9")});
  EXPECT_NE(Example1Flat(), other);
}

TEST(NfrRelationTest, FromFlatIsAllSingletons) {
  NfrRelation r = NfrRelation::FromFlat(Example1Flat());
  EXPECT_EQ(r.size(), 4u);
  for (const NfrTuple& t : r.tuples()) {
    EXPECT_TRUE(t.IsSimple());
  }
}

TEST(NfrRelationTest, ExpandRoundTripsFlat) {
  // Theorem 1 direction: NFR built from 1NF expands back to it.
  FlatRelation flat = Example1Flat();
  EXPECT_EQ(NfrRelation::FromFlat(flat).Expand(), flat);
}

TEST(NfrRelationTest, ExpandOfCompoundTuples) {
  NfrRelation r(Schema::OfStrings({"A", "B"}));
  r.Add(NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet(V("b1"))});
  r.Add(NfrTuple{ValueSet{V("a2"), V("a3")}, ValueSet(V("b2"))});
  EXPECT_EQ(r.Expand(), Example1Flat());
  EXPECT_EQ(r.ExpandedSize(), 4u);
}

TEST(NfrRelationTest, FindContaining) {
  NfrRelation r(Schema::OfStrings({"A", "B"}));
  r.Add(NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet(V("b1"))});
  r.Add(NfrTuple{ValueSet(V("a3")), ValueSet(V("b2"))});
  EXPECT_EQ(r.FindContaining(FlatTuple{V("a2"), V("b1")}), 0u);
  EXPECT_EQ(r.FindContaining(FlatTuple{V("a3"), V("b2")}), 1u);
  EXPECT_EQ(r.FindContaining(FlatTuple{V("a3"), V("b1")}), r.size());
  EXPECT_TRUE(r.ExpansionContains(FlatTuple{V("a1"), V("b1")}));
  EXPECT_FALSE(r.ExpansionContains(FlatTuple{V("a9"), V("b1")}));
}

TEST(NfrRelationTest, RemoveByValue) {
  NfrRelation r(Schema::OfStrings({"A"}));
  r.Add(NfrTuple{ValueSet(V("x"))});
  EXPECT_TRUE(r.Remove(NfrTuple{ValueSet(V("x"))}));
  EXPECT_FALSE(r.Remove(NfrTuple{ValueSet(V("x"))}));
}

TEST(NfrRelationTest, ValidateAcceptsDisjointTuples) {
  NfrRelation r(Schema::OfStrings({"A", "B"}));
  r.Add(NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet(V("b1"))});
  r.Add(NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet(V("b2"))});
  EXPECT_TRUE(r.Validate().ok());
}

TEST(NfrRelationTest, ValidateRejectsOverlappingExpansions) {
  NfrRelation r(Schema::OfStrings({"A", "B"}));
  r.Add(NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet(V("b1"))});
  r.Add(NfrTuple{ValueSet{V("a2"), V("a3")}, ValueSet{V("b1"), V("b2")}});
  Status s = r.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(NfrRelationTest, EqualsAsSetIgnoresOrder) {
  NfrRelation a(Schema::OfStrings({"A"}));
  a.Add(NfrTuple{ValueSet(V("x"))});
  a.Add(NfrTuple{ValueSet(V("y"))});
  NfrRelation b(Schema::OfStrings({"A"}));
  b.Add(NfrTuple{ValueSet(V("y"))});
  b.Add(NfrTuple{ValueSet(V("x"))});
  EXPECT_TRUE(a.EqualsAsSet(b));
  b.Add(NfrTuple{ValueSet(V("z"))});
  EXPECT_FALSE(a.EqualsAsSet(b));
}

TEST(NfrRelationTest, EquivalentToComparesExpansions) {
  // Two different NFRs denoting the same R* are "equivalent" — the
  // paper's information-preservation notion for composition.
  NfrRelation a(Schema::OfStrings({"A", "B"}));
  a.Add(NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet(V("b1"))});
  NfrRelation b(Schema::OfStrings({"A", "B"}));
  b.Add(NfrTuple{ValueSet(V("a1")), ValueSet(V("b1"))});
  b.Add(NfrTuple{ValueSet(V("a2")), ValueSet(V("b1"))});
  EXPECT_TRUE(a.EquivalentTo(b));
  EXPECT_FALSE(a.EqualsAsSet(b));
}

TEST(NfrRelationDeathTest, AddRejectsEmptyComponent) {
  NfrRelation r(Schema::OfStrings({"A"}));
  EXPECT_DEATH(r.Add(NfrTuple{ValueSet()}), "empty component");
}

TEST(NfrRelationDeathTest, AddRejectsDegreeMismatch) {
  NfrRelation r(Schema::OfStrings({"A", "B"}));
  EXPECT_DEATH(r.Add(NfrTuple{ValueSet(V("x"))}), "degree");
}

TEST(FormatTest, RenderNfrTable) {
  NfrRelation r(Schema::OfStrings({"Student", "Course"}));
  r.Add(NfrTuple{ValueSet(V("s1")), ValueSet{V("c1"), V("c2")}});
  std::string table = RenderTable(r, "R1");
  EXPECT_NE(table.find("R1"), std::string::npos);
  EXPECT_NE(table.find("Student"), std::string::npos);
  EXPECT_NE(table.find("c1, c2"), std::string::npos);
  EXPECT_NE(table.find("+--"), std::string::npos);
}

TEST(FormatTest, RenderFlatTable) {
  std::string table = RenderTable(Example1Flat());
  EXPECT_NE(table.find("| a1"), std::string::npos);
  EXPECT_NE(table.find("| b2"), std::string::npos);
}

TEST(MakeStringRelationTest, BuildsExpectedTuples) {
  FlatRelation r = Example1Flat();
  EXPECT_EQ(r.size(), 4u);
  EXPECT_TRUE(r.Contains(FlatTuple{V("a3"), V("b2")}));
  EXPECT_EQ(r.schema().attribute(1).name, "B");
}

}  // namespace
}  // namespace nf2
