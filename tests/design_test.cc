#include <gtest/gtest.h>

#include "core/fixedness.h"
#include "dependency/design.h"
#include "tests/test_util.h"

namespace nf2 {
namespace {

TEST(AdvisePermutationTest, FdLhsNestedLast) {
  // A->B over (A,B): A (the determinant) is nested last, B first.
  FdSet fds(2);
  fds.Add(AttrSet{0}, AttrSet{1});
  MvdSet mvds(2);
  Permutation perm = AdvisePermutation(2, fds, mvds);
  EXPECT_EQ(perm, (Permutation{1, 0}));
}

TEST(AdvisePermutationTest, MvdLhsNestedLast) {
  // Student ->-> Course | Club: Student last; Course (an explicit RHS)
  // before Club.
  FdSet fds(3);
  MvdSet mvds(3);
  mvds.Add(AttrSet{0}, AttrSet{1});
  Permutation perm = AdvisePermutation(3, fds, mvds);
  EXPECT_EQ(perm.back(), 0u);
  EXPECT_EQ(perm.front(), 1u);
}

TEST(AdvisePermutationTest, NoDependenciesIsIdentity) {
  FdSet fds(3);
  MvdSet mvds(3);
  EXPECT_EQ(AdvisePermutation(3, fds, mvds), IdentityPermutation(3));
}

TEST(AdvisePermutationTest, AdvisedCanonicalFixedOnFdLhs) {
  // Theorem 3 payoff: with nest order advised from K->X,Y the canonical
  // form is fixed on {K}.
  Rng rng(21);
  Schema schema = Schema::OfStrings({"K", "X", "Y"});
  FlatRelation rel(schema);
  for (int k = 0; k < 12; ++k) {
    rel.Insert(FlatTuple{V(StrCat("k", k).c_str()),
                         V(StrCat("x", k % 3).c_str()),
                         V(StrCat("y", k % 2).c_str())});
  }
  FdSet fds(3);
  fds.Add(AttrSet{0}, AttrSet{1, 2});
  MvdSet mvds(3);
  ASSERT_TRUE(fds.SatisfiedBy(rel));
  Permutation perm = AdvisePermutation(3, fds, mvds);
  EXPECT_EQ(perm.back(), 0u);  // K nested last.
  NfrRelation canonical = CanonicalForm(rel, perm);
  EXPECT_TRUE(IsFixedOn(canonical, {0}));
}

TEST(AdvisePermutationTest, AdvisedCanonicalFixedOnMvdLhs) {
  // Theorem 4 payoff for the §2 R1 relation.
  FlatRelation r1 = MakeStringRelation(
      {"Student", "Course", "Club"},
      {{"s1", "c1", "b1"}, {"s1", "c2", "b1"},
       {"s2", "c1", "b2"}, {"s2", "c2", "b2"}});
  FdSet fds(3);
  MvdSet mvds(3);
  mvds.Add(AttrSet{0}, AttrSet{1});
  Permutation perm = AdvisePermutation(3, fds, mvds);
  NfrRelation canonical = CanonicalForm(r1, perm);
  EXPECT_TRUE(IsFixedOn(canonical, {0}));
  // One tuple per student.
  EXPECT_EQ(canonical.size(), 2u);
}

TEST(PermutationScoreTest, CountsCanonicalTuples) {
  FlatRelation rel = MakeStringRelation({"A", "B"}, {{"a1", "b1"},
                                                     {"a2", "b1"},
                                                     {"a3", "b1"}});
  // Both orders collapse this relation to a single NFR tuple (nest A
  // groups by b1; nest B first yields 3 groups whose B-sets then merge
  // under nest A).
  EXPECT_EQ(PermutationScore(rel, {0, 1}), 1u);
  EXPECT_EQ(PermutationScore(rel, {1, 0}), 1u);
  // By definition the score is the canonical form's tuple count.
  Rng rng(23);
  FlatRelation random = RandomFlatRelation(&rng, 3, 3, 10);
  for (const Permutation& perm : AllPermutations(3)) {
    EXPECT_EQ(PermutationScore(random, perm),
              CanonicalForm(random, perm).size());
  }
}

TEST(BestPermutationBySizeTest, FindsSmallest) {
  FlatRelation rel = MakeStringRelation({"A", "B"}, {{"a1", "b1"},
                                                     {"a2", "b1"},
                                                     {"a3", "b1"}});
  Permutation best = BestPermutationBySize(rel);
  EXPECT_EQ(PermutationScore(rel, best), 1u);
}

TEST(BestPermutationBySizeTest, NeverWorseThanAnyPermutation) {
  Rng rng(22);
  for (int trial = 0; trial < 5; ++trial) {
    FlatRelation rel = RandomFlatRelation(&rng, 3, 3, 12);
    Permutation best = BestPermutationBySize(rel);
    size_t best_score = PermutationScore(rel, best);
    for (const Permutation& perm : AllPermutations(3)) {
      EXPECT_LE(best_score, PermutationScore(rel, perm));
    }
  }
}

TEST(AnalyzeDesignTest, ReportFields) {
  FlatRelation r1 = MakeStringRelation(
      {"Student", "Course", "Club"},
      {{"s1", "c1", "b1"}, {"s1", "c2", "b1"},
       {"s2", "c1", "b2"}, {"s2", "c2", "b2"}});
  FdSet fds(3);
  MvdSet mvds(3);
  mvds.Add(AttrSet{0}, AttrSet{1});
  DesignReport report = AnalyzeDesign(r1, fds, mvds);
  EXPECT_EQ(report.flat_tuples, 4u);
  EXPECT_EQ(report.canonical_tuples, 2u);
  EXPECT_FALSE(report.fixed_on.empty());
  std::string text = report.ToString(r1.schema());
  EXPECT_NE(text.find("nest order"), std::string::npos);
  EXPECT_NE(text.find("Student"), std::string::npos);
}

}  // namespace
}  // namespace nf2
