#include <gtest/gtest.h>

#include "core/fixedness.h"
#include "core/irreducible.h"
#include "core/nest.h"
#include "tests/test_util.h"

namespace nf2 {
namespace {

FlatRelation Example1Flat() {
  return MakeStringRelation({"A", "B"}, {{"a1", "b1"},
                                         {"a2", "b1"},
                                         {"a2", "b2"},
                                         {"a3", "b2"}});
}

// Example 1's two irreducible forms.
NfrRelation Example1R1() {
  NfrRelation r(Schema::OfStrings({"A", "B"}));
  r.Add(NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet(V("b1"))});
  r.Add(NfrTuple{ValueSet{V("a2"), V("a3")}, ValueSet(V("b2"))});
  return r;
}

NfrRelation Example1R2() {
  NfrRelation r(Schema::OfStrings({"A", "B"}));
  r.Add(NfrTuple{ValueSet(V("a1")), ValueSet(V("b1"))});
  r.Add(NfrTuple{ValueSet(V("a2")), ValueSet{V("b1"), V("b2")}});
  r.Add(NfrTuple{ValueSet(V("a3")), ValueSet(V("b2"))});
  return r;
}

TEST(CardinalityTest, ClassNames) {
  EXPECT_STREQ(CardinalityClassToString(CardinalityClass::k1To1), "1:1");
  EXPECT_STREQ(CardinalityClassToString(CardinalityClass::kNTo1), "n:1");
  EXPECT_STREQ(CardinalityClassToString(CardinalityClass::k1ToN), "1:n");
  EXPECT_STREQ(CardinalityClassToString(CardinalityClass::kMToN), "m:n");
}

TEST(CardinalityTest, ClassifyValueSingleTupleSingleton) {
  // b1 in R2... take R1: b1 appears in exactly one tuple, as the
  // singleton component B(b1) -> 1:1.
  EXPECT_EQ(ClassifyValue(Example1R1(), 1, V("b1")), CardinalityClass::k1To1);
}

TEST(CardinalityTest, ClassifyValueSingleTupleCompound) {
  // a1 in R1 appears once, inside the compound set {a1,a2} -> n:1.
  EXPECT_EQ(ClassifyValue(Example1R1(), 0, V("a1")), CardinalityClass::kNTo1);
}

TEST(CardinalityTest, ClassifyValueMultiTupleCompound) {
  // a2 in R1 appears in both tuples, inside compound sets -> m:n.
  EXPECT_EQ(ClassifyValue(Example1R1(), 0, V("a2")), CardinalityClass::kMToN);
}

TEST(CardinalityTest, ClassifyValueMultiTupleSingleton) {
  // In R2, b1 appears in tuple 1 as a singleton and in tuple 2 inside a
  // compound set: multi-tuple + compound occurrence -> m:n. A value that
  // appears in several tuples always as singleton is 1:n: take a1 in
  // the flat promotion of Example 1... a2 appears in two flat tuples.
  NfrRelation flat_nfr = NfrRelation::FromFlat(Example1Flat());
  EXPECT_EQ(ClassifyValue(flat_nfr, 0, V("a2")), CardinalityClass::k1ToN);
}

TEST(CardinalityTest, ClassifyValueAbsentIsOneOne) {
  EXPECT_EQ(ClassifyValue(Example1R1(), 0, V("zz")), CardinalityClass::k1To1);
}

TEST(CardinalityTest, ClassifyAttributeAggregatesWorstCase) {
  // R1.A contains an m:n value (a2) -> attribute is m:n.
  EXPECT_EQ(ClassifyAttribute(Example1R1(), 0), CardinalityClass::kMToN);
  // R1.B: all values singleton, single-tuple -> 1:1.
  EXPECT_EQ(ClassifyAttribute(Example1R1(), 1), CardinalityClass::k1To1);
  // R2.B: b1/b2 appear in two tuples, some occurrences compound -> m:n.
  EXPECT_EQ(ClassifyAttribute(Example1R2(), 1), CardinalityClass::kMToN);
  // R2.A: each value once, singleton -> 1:1.
  EXPECT_EQ(ClassifyAttribute(Example1R2(), 0), CardinalityClass::k1To1);
}

TEST(FixednessTest, PaperExampleAfterDefinition7) {
  // "In Example 1, R is not fixed on any domain. However, R1 is fixed
  // on A and R2 on B." The attribute names in that sentence are an
  // erratum: R1's tuples share a2 on A (so R1 cannot be fixed on A by
  // the literal Definition 7), and the paper's own Example 3 (R7 fixed
  // on A, R8 not) confirms the literal per-value reading. With
  // Definition 7 applied as written, R1 is fixed on B and R2 on A.
  NfrRelation flat_nfr = NfrRelation::FromFlat(Example1Flat());
  EXPECT_FALSE(IsFixedOn(flat_nfr, {0}));
  EXPECT_FALSE(IsFixedOn(flat_nfr, {1}));
  EXPECT_TRUE(IsFixedOn(Example1R1(), {1}));
  EXPECT_FALSE(IsFixedOn(Example1R1(), {0}));
  EXPECT_TRUE(IsFixedOn(Example1R2(), {0}));
  EXPECT_FALSE(IsFixedOn(Example1R2(), {1}));
}

TEST(FixednessTest, Example3FixednessMatchesPaper) {
  // Example 3: under MVD A->->B|C, "R7 is fixed on A, however R8 is
  // not so."
  Schema schema = Schema::OfStrings({"A", "B", "C"});
  NfrRelation r7(schema);
  r7.Add(NfrTuple{ValueSet(V("a1")), ValueSet{V("b1"), V("b2")},
                  ValueSet(V("c1"))});
  r7.Add(NfrTuple{ValueSet(V("a2")), ValueSet(V("b1")),
                  ValueSet{V("c1"), V("c2")}});
  NfrRelation r8(schema);
  r8.Add(NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet(V("b1")),
                  ValueSet(V("c1"))});
  r8.Add(NfrTuple{ValueSet(V("a1")), ValueSet(V("b2")), ValueSet(V("c1"))});
  r8.Add(NfrTuple{ValueSet(V("a2")), ValueSet(V("b1")), ValueSet(V("c2"))});
  EXPECT_TRUE(IsFixedOn(r7, {0}));
  EXPECT_FALSE(IsFixedOn(r8, {0}));
  // Both are irreducible forms of the same 1NF relation.
  EXPECT_TRUE(r7.EquivalentTo(r8));
}

TEST(FixednessTest, FullAttributeSetAlwaysFixed) {
  // On the full attribute set every well-formed (disjoint-expansion)
  // NFR is fixed.
  EXPECT_TRUE(IsFixedOn(Example1R1(), {0, 1}));
  EXPECT_TRUE(IsFixedOn(Example1R2(), {0, 1}));
}

TEST(FixednessTest, EmptyAttrSetFixedOnlyForTinyRelations) {
  NfrRelation r(Schema::OfStrings({"A"}));
  EXPECT_TRUE(IsFixedOn(r, AttrSet()));
  r.Add(NfrTuple{ValueSet(V("x"))});
  EXPECT_TRUE(IsFixedOn(r, AttrSet()));
  r.Add(NfrTuple{ValueSet(V("y"))});
  EXPECT_FALSE(IsFixedOn(r, AttrSet()));
}

TEST(FixednessTest, ViolationRequiresSharedValuesOnAllAttrs) {
  NfrRelation r(Schema::OfStrings({"A", "B"}));
  r.Add(NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet(V("b1"))});
  r.Add(NfrTuple{ValueSet{V("a2"), V("a3")}, ValueSet(V("b2"))});
  // Tuples share a2 on A -> not fixed on {A}; but B components are
  // disjoint -> fixed on {A,B} and on {B}.
  EXPECT_FALSE(IsFixedOn(r, {0}));
  EXPECT_TRUE(IsFixedOn(r, {1}));
  EXPECT_TRUE(IsFixedOn(r, {0, 1}));
}

TEST(FixednessTest, MinimalFixedSets) {
  NfrRelation r1 = Example1R1();
  std::vector<AttrSet> minimal = MinimalFixedSets(r1);
  // R1 is fixed on {B} (its B components are disjoint) but not on {A}
  // (a2 is shared), so {B} is the unique minimal fixed set.
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0], (AttrSet{1}));
}

TEST(FixednessTest, MinimalFixedSetsExcludesSupersets) {
  NfrRelation flat_nfr = NfrRelation::FromFlat(Example1Flat());
  std::vector<AttrSet> minimal = MinimalFixedSets(flat_nfr);
  // Flat Example 1 is fixed only on {A,B} (tuples are distinct).
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0], (AttrSet{0, 1}));
}

// ---- Theorem 5 as a property test -------------------------------------
//
// "There exists a fixed canonical form relation where the fixedness is
// established on at most n-1 domains." Nesting E_i first (on a 1NF
// input) leaves tuples with pairwise-distinct singleton parts on the
// remaining attributes, i.e. fixed on U - {E_i}; the proof sketch notes
// that the successive nests preserve the previously-established
// fixedness. We verify the canonical form is fixed on the complement of
// the FIRST-nested attribute.
class Theorem5Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem5Test, CanonicalFormFixedOnComplementOfFirstNested) {
  Rng rng(GetParam());
  FlatRelation flat = RandomFlatRelation(&rng, 3, 3, 12);
  for (const Permutation& perm : AllPermutations(3)) {
    NfrRelation canonical = CanonicalForm(flat, perm);
    EXPECT_TRUE(IsFixedOnAllButOne(canonical, perm.front()))
        << "perm first = " << perm.front() << "\n"
        << canonical.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem5Test,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace nf2
