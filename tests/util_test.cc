#include <gtest/gtest.h>

#include <set>

#include "util/hash.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"

namespace nf2 {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad degree");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad degree");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad degree");
}

TEST(StatusTest, NamedConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailingFunction() { return Status::IOError("disk gone"); }

Status PropagatingFunction() {
  NF2_RETURN_IF_ERROR(FailingFunction());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(PropagatingFunction().code(), StatusCode::kIOError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubledPositive(int x) {
  NF2_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnOnSuccess) {
  Result<int> r = DoubledPositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, AssignOrReturnOnError) {
  Result<int> r = DoubledPositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = *std::move(r);
  EXPECT_EQ(*v, 7);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"only"}, ", "), "only");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
}

TEST(StringUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("NeSt"), "nest");
  EXPECT_EQ(ToUpper("NeSt"), "NEST");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("SELECT * FROM R", "SELECT"));
  EXPECT_FALSE(StartsWith("SEL", "SELECT"));
}

TEST(StringUtilTest, StrCat) {
  EXPECT_EQ(StrCat("n=", 3, ", ok=", true), "n=3, ok=1");
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    any_diff = any_diff || (a.Next() != b.Next());
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(10), 10u);
  }
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.NextBelow(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(HashTest, HashCombineChangesWithInput) {
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_NE(HashCombine(0, 1), HashCombine(0, 2));
}

TEST(HashTest, HashRangeOrderSensitive) {
  std::vector<int> a{1, 2, 3};
  std::vector<int> b{3, 2, 1};
  EXPECT_NE(HashRange(a.begin(), a.end()), HashRange(b.begin(), b.end()));
}

}  // namespace
}  // namespace nf2
