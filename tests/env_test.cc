#include <gtest/gtest.h>

#include <filesystem>

#include "storage/env.h"
#include "storage/fault_injection_env.h"
#include "tests/test_util.h"
#include "util/string_util.h"

namespace nf2 {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("nf2_env_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(Env::Default()->CreateDirs(dir_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (std::filesystem::path(dir_) / name).string();
  }

  std::string dir_;
};

TEST_F(EnvTest, WritableFileAppendsAndPersists) {
  Env* env = Env::Default();
  auto file = env->NewWritableFile(Path("a.txt"), /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("hello ").ok());
  ASSERT_TRUE((*file)->Append("world").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());
  auto contents = env->ReadFileToString(Path("a.txt"));
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "hello world");
}

TEST_F(EnvTest, WritableFileAppendModeKeepsExistingBytes) {
  Env* env = Env::Default();
  {
    auto file = env->NewWritableFile(Path("a.txt"), /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("one,").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  {
    auto file = env->NewWritableFile(Path("a.txt"), /*truncate=*/false);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("two").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  EXPECT_EQ(*env->ReadFileToString(Path("a.txt")), "one,two");
}

TEST_F(EnvTest, RandomRWFileReadsBackPositionalWrites) {
  Env* env = Env::Default();
  auto file = env->NewRandomRWFile(Path("r.bin"), /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Write(0, "aaaa").ok());
  ASSERT_TRUE((*file)->Write(8, "bbbb").ok());  // Leaves a hole.
  ASSERT_TRUE((*file)->Write(2, "XX").ok());    // Overwrite in place.
  char buf[4];
  ASSERT_TRUE((*file)->Read(0, 4, buf).ok());
  EXPECT_EQ(std::string(buf, 4), "aaXX");
  ASSERT_TRUE((*file)->Read(8, 4, buf).ok());
  EXPECT_EQ(std::string(buf, 4), "bbbb");
  EXPECT_EQ(*env->FileSize(Path("r.bin")), 12u);
  // A read past EOF is an error, not a silent short read.
  EXPECT_FALSE((*file)->Read(10, 4, buf).ok());
  ASSERT_TRUE((*file)->Close().ok());
}

TEST_F(EnvTest, TruncateFileCutsToExactLength) {
  Env* env = Env::Default();
  {
    auto file = env->NewWritableFile(Path("t.txt"), /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("0123456789").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  ASSERT_TRUE(env->TruncateFile(Path("t.txt"), 4).ok());
  EXPECT_EQ(*env->ReadFileToString(Path("t.txt")), "0123");
  // Appends resume exactly after the cut.
  auto file = env->NewWritableFile(Path("t.txt"), /*truncate=*/false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("X").ok());
  ASSERT_TRUE((*file)->Close().ok());
  EXPECT_EQ(*env->ReadFileToString(Path("t.txt")), "0123X");
}

TEST_F(EnvTest, WriteFileAtomicReplacesAndLeavesNoTemp) {
  Env* env = Env::Default();
  ASSERT_TRUE(env->WriteFileAtomic(Path("f.dat"), "first").ok());
  EXPECT_EQ(*env->ReadFileToString(Path("f.dat")), "first");
  ASSERT_TRUE(env->WriteFileAtomic(Path("f.dat"), "second").ok());
  EXPECT_EQ(*env->ReadFileToString(Path("f.dat")), "second");
  EXPECT_FALSE(env->FileExists(Path("f.dat.tmp")));
  auto entries = env->ListDir(dir_);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 1u);
}

TEST_F(EnvTest, RenameAndRemove) {
  Env* env = Env::Default();
  ASSERT_TRUE(env->WriteFileAtomic(Path("a"), "x").ok());
  ASSERT_TRUE(env->RenameFile(Path("a"), Path("b")).ok());
  EXPECT_FALSE(env->FileExists(Path("a")));
  EXPECT_TRUE(env->FileExists(Path("b")));
  ASSERT_TRUE(env->RemoveFile(Path("b")).ok());
  EXPECT_FALSE(env->FileExists(Path("b")));
}

// ---------------------------------------------------------------------
// FaultInjectionEnv
// ---------------------------------------------------------------------

TEST_F(EnvTest, FaultEnvKillsAtExactTriggerAndStaysDead) {
  FaultInjectionEnv fault(Env::Default(), /*seed=*/7);
  fault.Arm(3);  // Op 1: open. Op 2: first append. Op 3: second append.
  auto file = fault.NewWritableFile(Path("w.log"), /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE((*file)->Append("first").ok());
  EXPECT_FALSE((*file)->Append("second").ok());  // The trigger.
  EXPECT_TRUE(fault.killed());
  // Every mutation after the kill fails cleanly.
  EXPECT_FALSE((*file)->Append("third").ok());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_FALSE(fault.RenameFile(Path("w.log"), Path("x.log")).ok());
  EXPECT_FALSE(fault.TruncateFile(Path("w.log"), 0).ok());
  EXPECT_FALSE(fault.NewWritableFile(Path("y.log"), true).ok());
}

TEST_F(EnvTest, FaultEnvPartialEffectIsDeterministic) {
  // The same (seed, trigger) must tear the same byte count, run after
  // run — the torture harness depends on exact reproducibility.
  auto torn_size = [&](uint64_t seed) -> uint64_t {
    std::string path = Path(StrCat("det_", seed, ".log"));
    FaultInjectionEnv fault(Env::Default(), seed);
    fault.Arm(2);
    auto file = fault.NewWritableFile(path, /*truncate=*/true);
    EXPECT_TRUE(file.ok());
    EXPECT_FALSE((*file)->Append("0123456789").ok());
    uint64_t size = *Env::Default()->FileSize(path);
    EXPECT_TRUE(Env::Default()->RemoveFile(path).ok());
    return size;
  };
  EXPECT_EQ(torn_size(1), torn_size(1));
  EXPECT_EQ(torn_size(2), torn_size(2));
  // A torn write never writes more than was asked.
  EXPECT_LE(torn_size(3), 10u);
}

TEST_F(EnvTest, FaultEnvDropUnsyncedStateRollsBackToLastSync) {
  FaultInjectionEnv fault(Env::Default(), /*seed=*/42);
  fault.Arm(UINT64_MAX);  // Count ops without killing.
  auto file = fault.NewWritableFile(Path("w.log"), /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("durable").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Append("-volatile").ok());  // Never synced.
  ASSERT_TRUE((*file)->Close().ok());
  // Writes pass through (reads see them, like the OS page cache)...
  EXPECT_EQ(*fault.ReadFileToString(Path("w.log")), "durable-volatile");
  // ...but only the synced prefix survives the "reboot".
  ASSERT_TRUE(fault.DropUnsyncedState().ok());
  EXPECT_EQ(*Env::Default()->ReadFileToString(Path("w.log")), "durable");
}

TEST_F(EnvTest, FaultEnvUnsyncedNewFileRollsBackToEmpty) {
  FaultInjectionEnv fault(Env::Default(), /*seed=*/9);
  fault.Arm(UINT64_MAX);
  auto file = fault.NewWritableFile(Path("new.log"), /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("never synced").ok());
  ASSERT_TRUE((*file)->Close().ok());
  ASSERT_TRUE(fault.DropUnsyncedState().ok());
  EXPECT_EQ(*Env::Default()->ReadFileToString(Path("new.log")), "");
}

TEST_F(EnvTest, FaultEnvRenameCarriesDurableContent) {
  FaultInjectionEnv fault(Env::Default(), /*seed=*/11);
  fault.Arm(UINT64_MAX);
  auto file = fault.NewWritableFile(Path("f.tmp"), /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("payload").ok());
  ASSERT_TRUE((*file)->Sync().ok());
  ASSERT_TRUE((*file)->Close().ok());
  ASSERT_TRUE(fault.RenameFile(Path("f.tmp"), Path("f.dat")).ok());
  ASSERT_TRUE(fault.DropUnsyncedState().ok());
  // The synced-then-renamed file survives under its new name.
  EXPECT_EQ(*Env::Default()->ReadFileToString(Path("f.dat")), "payload");
  EXPECT_FALSE(Env::Default()->FileExists(Path("f.tmp")));
}

TEST_F(EnvTest, FaultEnvCountsAreStableAcrossIdenticalRuns) {
  // The torture harness counts ops in a dry run, then replays the same
  // workload once per injection point: identical runs must produce
  // identical op counts.
  auto run = [&](int salt) -> uint64_t {
    std::string path = Path(StrCat("count_", salt, ".log"));
    FaultInjectionEnv fault(Env::Default(), /*seed=*/5);
    fault.Arm(UINT64_MAX);
    auto file = fault.NewWritableFile(path, /*truncate=*/true);
    EXPECT_TRUE(file.ok());
    for (int i = 0; i < 5; ++i) {
      EXPECT_TRUE((*file)->Append("x").ok());
      EXPECT_TRUE((*file)->Sync().ok());
    }
    EXPECT_TRUE((*file)->Close().ok());
    EXPECT_TRUE(Env::Default()->RemoveFile(path).ok());
    return fault.op_count();
  };
  EXPECT_EQ(run(1), run(2));
  EXPECT_EQ(run(1), 11u);  // 1 open + 5 appends + 5 syncs.
}

}  // namespace
}  // namespace nf2
