#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "baseline/flat_engine.h"
#include "engine/database.h"
#include "server/session.h"
#include "shard/router.h"
#include "storage/fault_injection_env.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace nf2 {
namespace {

// ---------------------------------------------------------------------
// Torture harness: run a deterministic keyed workload against a
// FaultInjectionEnv, kill the write stream at EVERY mutating syscall in
// turn, drop unsynced state (the reboot), reopen against the real Env,
// and demand that recovery lands on an exact acknowledged state.
//
// The oracle is a shadow FlatBaseline (single-table 1NF engine) per
// relation, snapshotted after every acknowledged unit. A crash during
// unit u+1 must recover to snapshot[u] (the unit's commit record never
// became durable) or to the unit's own post-state (the commit record
// reached disk but the ack was lost) — anything else is lost or
// phantom data.
// ---------------------------------------------------------------------

using Snapshot = std::map<std::string, FlatRelation>;
using ShadowMap = std::map<std::string, FlatBaseline>;

Schema EnrollSchema() {
  return Schema::OfStrings({"Student", "Course", "Club"});
}
Schema AcctSchema() { return Schema::OfStrings({"Owner", "Asset"}); }

FlatBaseline MakeShadow(const Schema& schema) {
  size_t d = schema.degree();
  return FlatBaseline(schema, FdSet(d, {}), MvdSet(d, {}),
                      FlatBaseline::Mode::kSingleTable);
}

Snapshot SnapOf(const ShadowMap& shadow) {
  Snapshot out;
  for (const auto& [name, baseline] : shadow) {
    out.emplace(name, baseline.Scan());
  }
  return out;
}

std::string DescribeSnapshot(const Snapshot& snap) {
  std::string out;
  for (const auto& [name, rel] : snap) {
    out += StrCat(name, "=", rel.size(), " tuples; ");
  }
  return out.empty() ? "(no relations)" : out;
}

/// Number of data-op units in the workload (transactions count as one
/// unit of several ops; the total logical op count exceeds 500).
constexpr int kDataUnits = 520;
constexpr uint64_t kWorkloadSeed = 0xA11CE5EED;

/// Runs the full workload against `db`, mirroring every unit into a
/// shadow oracle. Appends one snapshot per ACKNOWLEDGED unit to
/// `snapshots` (snapshots->front() is the pre-workload empty state) and
/// leaves the in-flight unit's would-be post-state in `candidate`.
/// Returns the first error (the injected kill, in torture runs).
Status RunWorkload(Database* db, std::vector<Snapshot>* snapshots,
                   Snapshot* candidate, size_t* logical_ops) {
  Rng rng(kWorkloadSeed);
  ShadowMap shadow;
  snapshots->clear();
  snapshots->push_back(SnapOf(shadow));
  *candidate = snapshots->front();

  // Runs one unit: `apply` mutates the tentative shadow to the unit's
  // post-state (it doubles as the candidate for a commit-record-durable
  // crash), `db_ops` issues the engine calls.
  auto run_unit = [&](auto&& apply,
                      auto&& db_ops) -> Status {
    ShadowMap tentative = shadow;
    apply(&tentative);
    *candidate = SnapOf(tentative);
    NF2_RETURN_IF_ERROR(db_ops(&tentative));
    shadow = std::move(tentative);
    snapshots->push_back(*candidate);
    return Status::OK();
  };

  // A keyed op against relation `name`: tuples are drawn from a small
  // fixed universe, so inserts and deletes keep hitting the same keys
  // (value sharing exercises the §4 canonical-form maintenance).
  auto random_tuple = [&](const std::string& name) -> FlatTuple {
    if (name == "enroll") {
      return FlatTuple{
          Value::String(StrCat("s", rng.NextBelow(6))),
          Value::String(StrCat("c", rng.NextBelow(4))),
          Value::String(StrCat("k", rng.NextBelow(4)))};
    }
    return FlatTuple{Value::String(StrCat("o", rng.NextBelow(5))),
                     Value::String(StrCat("a", rng.NextBelow(6)))};
  };
  // Insert when absent, delete when present — decided against the
  // tentative shadow so ops inside one transaction compose.
  auto one_op = [&](Database* target, ShadowMap* tentative,
                    const std::string& name) -> Status {
    FlatTuple t = random_tuple(name);
    FlatBaseline& oracle = tentative->at(name);
    if (oracle.Contains(t)) {
      NF2_RETURN_IF_ERROR(oracle.Delete(t));
      ++*logical_ops;
      return target->Delete(name, t);
    }
    NF2_RETURN_IF_ERROR(oracle.Insert(t));
    ++*logical_ops;
    return target->Insert(name, t);
  };
  auto pick_relation = [&](const ShadowMap& s) -> std::string {
    if (s.count("acct") == 0) return "enroll";
    return rng.NextBelow(10) < 7 ? "enroll" : "acct";
  };

  // Unit 1+2: DDL.
  NF2_RETURN_IF_ERROR(run_unit(
      [&](ShadowMap* t) { t->emplace("enroll", MakeShadow(EnrollSchema())); },
      [&](ShadowMap*) {
        return db->CreateRelation("enroll", EnrollSchema(), {0, 1, 2});
      }));
  NF2_RETURN_IF_ERROR(run_unit(
      [&](ShadowMap* t) { t->emplace("acct", MakeShadow(AcctSchema())); },
      [&](ShadowMap*) {
        return db->CreateRelation("acct", AcctSchema(), {1, 0});
      }));

  for (int unit = 0; unit < kDataUnits; ++unit) {
    if (unit > 0 && unit % 40 == 0) {
      // Checkpoint unit: no logical change, heavy I/O — many of the
      // most interesting injection points live here.
      NF2_RETURN_IF_ERROR(run_unit([](ShadowMap*) {},
                                   [&](ShadowMap*) { return db->Checkpoint(); }));
      continue;
    }
    if (unit == 250) {
      NF2_RETURN_IF_ERROR(run_unit(
          [&](ShadowMap* t) { t->erase("acct"); },
          [&](ShadowMap*) { return db->DropRelation("acct"); }));
      continue;
    }
    if (unit == 260) {
      NF2_RETURN_IF_ERROR(run_unit(
          [&](ShadowMap* t) {
            t->emplace("acct", MakeShadow(AcctSchema()));
          },
          [&](ShadowMap*) {
            return db->CreateRelation("acct", AcctSchema(), {1, 0});
          }));
      continue;
    }
    // Decide the unit's shape and keys OUTSIDE run_unit so the random
    // stream is identical whether or not the engine calls fail.
    bool txn_unit = rng.NextBelow(10) == 0;
    size_t txn_ops = 2 + rng.NextBelow(4);
    if (txn_unit) {
      NF2_RETURN_IF_ERROR(run_unit(
          [](ShadowMap*) {},  // Applied inside db_ops via one_op.
          [&](ShadowMap* tentative) -> Status {
            NF2_RETURN_IF_ERROR(db->Begin());
            for (size_t i = 0; i < txn_ops; ++i) {
              NF2_RETURN_IF_ERROR(
                  one_op(db, tentative, pick_relation(*tentative)));
            }
            Status s = db->Commit();
            // The candidate snapshot must carry the tentative state
            // mutated by one_op, so recompute it here.
            *candidate = SnapOf(*tentative);
            return s;
          }));
    } else {
      NF2_RETURN_IF_ERROR(run_unit(
          [](ShadowMap*) {},
          [&](ShadowMap* tentative) -> Status {
            Status s = one_op(db, tentative, pick_relation(*tentative));
            *candidate = SnapOf(*tentative);
            return s;
          }));
    }
  }
  return Status::OK();
}

Result<Snapshot> DbSnapshot(Database* db) {
  Snapshot out;
  for (const std::string& name : db->ListRelations()) {
    NF2_ASSIGN_OR_RETURN(FlatRelation rel, db->Scan(name));
    out.emplace(name, std::move(rel));
  }
  return out;
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Every killed run logs warnings (torn WAL tails, failed shutdown
    // checkpoints) by design; thousands of them would drown real
    // output.
    SetLogThreshold(LogLevel::kError);
    // Prefer a RAM-backed directory: the sweep issues hundreds of
    // thousands of fsyncs, which are free on tmpfs and painful on disk.
    std::string base = std::filesystem::exists("/dev/shm")
                           ? "/dev/shm"
                           : std::filesystem::temp_directory_path().string();
    dir_ = (std::filesystem::path(base) /
            ("nf2_crash_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    ResetDir();
  }
  void TearDown() override {
    SetLogThreshold(LogLevel::kInfo);
    std::filesystem::remove_all(dir_);
  }

  void ResetDir() {
    std::filesystem::remove_all(dir_);
    ASSERT_TRUE(Env::Default()->CreateDirs(dir_).ok());
  }

  static Database::Options DbOptions() {
    Database::Options options;
    options.enforce_fds = false;
    options.sync_wal = true;
    return options;
  }

  std::string dir_;
};

TEST_F(CrashRecoveryTest, WorkloadRunsCleanWithoutFaults) {
  // Baseline sanity: the workload itself is valid, and the shadow
  // oracle tracks the engine exactly.
  FaultInjectionEnv fault(Env::Default(), /*seed=*/1);
  fault.Arm(UINT64_MAX);
  std::vector<Snapshot> snapshots;
  Snapshot candidate;
  size_t logical_ops = 0;
  {
    auto db = Database::Open(dir_, DbOptions(), &fault);
    ASSERT_TRUE(db.ok()) << db.status();
    Status s = RunWorkload(db->get(), &snapshots, &candidate, &logical_ops);
    ASSERT_TRUE(s.ok()) << s;
    EXPECT_GE(logical_ops, 500u) << "workload must stay >= 500 ops";
    ASSERT_TRUE((*db)->VerifyIntegrity().ok());
    auto state = DbSnapshot(db->get());
    ASSERT_TRUE(state.ok());
    EXPECT_EQ(*state, snapshots.back());
  }
  EXPECT_GT(fault.op_count(), 1000u);  // A real injection surface.
}

TEST_F(CrashRecoveryTest, EveryInjectionPointRecoversExactly) {
  // Pass 1: count the workload's mutating operations.
  uint64_t total_ops = 0;
  {
    FaultInjectionEnv fault(Env::Default(), /*seed=*/0);
    fault.Arm(UINT64_MAX);
    std::vector<Snapshot> snapshots;
    Snapshot candidate;
    size_t logical_ops = 0;
    {
      auto db = Database::Open(dir_, DbOptions(), &fault);
      ASSERT_TRUE(db.ok()) << db.status();
      ASSERT_TRUE(
          RunWorkload(db->get(), &snapshots, &candidate, &logical_ops).ok());
      ASSERT_GE(logical_ops, 500u);
    }  // Destructor checkpoint is part of the op stream.
    total_ops = fault.op_count();
  }
  ASSERT_GT(total_ops, 0u);
  ASSERT_LT(total_ops, 100000u) << "workload op count exploded";

  // CI splits the sweep across parallel jobs: shard i of N takes
  // kill_at = i+1, i+1+N, i+1+2N, ... Striding (rather than contiguous
  // ranges) levels shard runtimes, because checkpoint-heavy stretches
  // of the op stream cost more per injection point than WAL appends.
  // Unset or "0/1" runs every point, so local `ctest` stays exhaustive.
  uint64_t shard = 0;
  uint64_t total_shards = 1;
  if (const char* s = std::getenv("NF2_CRASH_SHARD_INDEX")) {
    shard = std::strtoull(s, nullptr, 10);
  }
  if (const char* s = std::getenv("NF2_CRASH_TOTAL_SHARDS")) {
    total_shards = std::max<uint64_t>(1, std::strtoull(s, nullptr, 10));
  }
  ASSERT_LT(shard, total_shards) << "NF2_CRASH_SHARD_INDEX out of range";

  // Pass 2: one run per injection point. Each starts from a fresh
  // directory, so determinism makes run k identical to the count run
  // up to the kill at mutating op k.
  for (uint64_t kill_at = 1 + shard; kill_at <= total_ops;
       kill_at += total_shards) {
    ResetDir();
    FaultInjectionEnv fault(Env::Default(), /*seed=*/kill_at * 7919);
    fault.Arm(kill_at);
    std::vector<Snapshot> snapshots;
    Snapshot candidate;
    size_t logical_ops = 0;
    {
      auto db = Database::Open(dir_, DbOptions(), &fault);
      if (db.ok()) {
        // The workload stops at the injected kill; the destructor's
        // best-effort checkpoint fails cleanly against the dead env.
        Status ignored =
            RunWorkload(db->get(), &snapshots, &candidate, &logical_ops);
        (void)ignored;
      } else {
        // The kill hit during Open itself; the acknowledged state is
        // the empty database.
        snapshots.assign(1, Snapshot{});
        candidate = Snapshot{};
      }
    }
    ASSERT_TRUE(fault.killed()) << "trigger " << kill_at << " never fired";
    // Reboot: everything unsynced vanishes.
    ASSERT_TRUE(fault.DropUnsyncedState().ok());

    // Recover against the real Env and audit.
    auto db = Database::Open(dir_, DbOptions());
    ASSERT_TRUE(db.ok()) << "kill_at=" << kill_at
                         << " recovery failed: " << db.status();
    Status integrity = (*db)->VerifyIntegrity();
    ASSERT_TRUE(integrity.ok())
        << "kill_at=" << kill_at << ": " << integrity;
    auto state = DbSnapshot(db->get());
    ASSERT_TRUE(state.ok()) << "kill_at=" << kill_at << ": "
                            << state.status();
    const Snapshot& acked = snapshots.back();
    EXPECT_TRUE(*state == acked || *state == candidate)
        << "kill_at=" << kill_at << " recovered to neither the last "
        << "acknowledged state nor the in-flight unit's post-state\n"
        << "  recovered: " << DescribeSnapshot(*state) << "\n"
        << "  acked:     " << DescribeSnapshot(acked) << "\n"
        << "  in-flight: " << DescribeSnapshot(candidate);
    if (::testing::Test::HasFailure()) break;  // One repro is enough.
  }
}

TEST_F(CrashRecoveryTest, IncrementalCheckpointKillSweepRecoversExactly) {
  // A dense sweep over just the SECOND checkpoint's injection points:
  // the first checkpoint builds the page mapping, so the second runs
  // the incremental path (shadow page writes, manifest rename, WAL
  // truncate). A checkpoint changes no logical data, so every kill
  // inside it must recover to exactly the pre-checkpoint state — via
  // the old manifest + full replay before the rename lands, via the
  // new manifest after — and the recovered database must survive a
  // fresh checkpoint (stray shadow pages from the failed attempt are
  // unreferenced slots, not corruption).
  Schema schema = Schema::OfStrings({"K", "P"});
  auto row = [](int i) {
    return FlatTuple{Value::String(StrCat("k", i)),
                     Value::String(StrCat("p", i, "_", std::string(80, 'x')))};
  };
  // Fixed workload; reports the fault-op counts bracketing the second
  // checkpoint. Returns the injected kill in torture runs.
  auto drive = [&](FaultInjectionEnv* fault, uint64_t* before,
                   uint64_t* after) -> Status {
    auto db = Database::Open(dir_, DbOptions(), fault);
    NF2_RETURN_IF_ERROR(db.status());
    NF2_RETURN_IF_ERROR((*db)->CreateRelation("t", schema, {0, 1}));
    for (int i = 0; i < 40; ++i) {
      NF2_RETURN_IF_ERROR((*db)->Insert("t", row(i)));
    }
    NF2_RETURN_IF_ERROR((*db)->Checkpoint());  // Builds the mapping.
    for (int i = 40; i < 44; ++i) {
      NF2_RETURN_IF_ERROR((*db)->Insert("t", row(i)));
    }
    NF2_RETURN_IF_ERROR((*db)->Delete("t", row(0)));
    if (before) *before = fault->op_count();
    NF2_RETURN_IF_ERROR((*db)->Checkpoint());  // Incremental delta.
    if (after) *after = fault->op_count();
    return Status::OK();
  };

  uint64_t before = 0;
  uint64_t after = 0;
  {
    FaultInjectionEnv fault(Env::Default(), /*seed=*/11);
    fault.Arm(UINT64_MAX);
    ASSERT_TRUE(drive(&fault, &before, &after).ok());
  }
  ASSERT_GT(after, before) << "second checkpoint issued no mutating ops";

  FlatRelation expected(schema);
  for (int i = 1; i < 44; ++i) expected.Insert(row(i));

  for (uint64_t kill_at = before + 1; kill_at <= after; ++kill_at) {
    ResetDir();
    FaultInjectionEnv fault(Env::Default(), /*seed=*/kill_at * 131);
    fault.Arm(kill_at);
    {
      Status ignored = drive(&fault, nullptr, nullptr);
      (void)ignored;
    }  // The handle's shutdown checkpoint fails cleanly: the env is dead.
    ASSERT_TRUE(fault.killed()) << "trigger " << kill_at << " never fired";
    ASSERT_TRUE(fault.DropUnsyncedState().ok());

    auto db = Database::Open(dir_, DbOptions());
    ASSERT_TRUE(db.ok()) << "kill_at=" << kill_at
                         << " recovery failed: " << db.status();
    ASSERT_TRUE((*db)->VerifyIntegrity().ok()) << "kill_at=" << kill_at;
    auto scan = (*db)->Scan("t");
    ASSERT_TRUE(scan.ok()) << "kill_at=" << kill_at;
    EXPECT_EQ(*scan, expected)
        << "kill_at=" << kill_at << " recovered " << scan->size()
        << " tuples, want " << expected.size();
    ASSERT_TRUE((*db)->Checkpoint().ok())
        << "kill_at=" << kill_at << ": checkpoint retry after recovery";
    if (::testing::Test::HasFailure()) break;
  }
}

TEST_F(CrashRecoveryTest, CrashCutTransactionIsDiscarded) {
  // A kill between a transaction's data records and its commit marker
  // must discard the whole transaction on recovery.
  FaultInjectionEnv fault(Env::Default(), /*seed=*/3);
  fault.Arm(UINT64_MAX);
  {
    auto db = Database::Open(dir_, DbOptions(), &fault);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(
        (*db)->CreateRelation("acct", AcctSchema(), {1, 0}).ok());
    ASSERT_TRUE((*db)->Insert("acct", FlatTuple{V("ada"), V("gold")}).ok());
    ASSERT_TRUE((*db)->Begin().ok());
    ASSERT_TRUE(
        (*db)->Insert("acct", FlatTuple{V("bob"), V("gold")}).ok());
    ASSERT_TRUE(
        (*db)->Delete("acct", FlatTuple{V("ada"), V("gold")}).ok());
    // Crash NOW: leak the handle so neither the rollback nor the
    // shutdown checkpoint runs, exactly like a power cut. The txn's
    // data records were appended but never synced (they defer to the
    // commit marker, which never happened).
    (void)(*db).release();
  }
  ASSERT_TRUE(fault.DropUnsyncedState().ok());
  auto db = Database::Open(dir_, DbOptions());
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE((*db)->VerifyIntegrity().ok());
  auto scan = (*db)->Scan("acct");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), 1u);
  EXPECT_TRUE(scan->Contains(FlatTuple{V("ada"), V("gold")}));
  EXPECT_FALSE(scan->Contains(FlatTuple{V("bob"), V("gold")}));
}

TEST_F(CrashRecoveryTest, AutocommitAfterCrashCutTxnSurvivesSecondRestart) {
  // Regression: a crash-cut transaction leaves an unmatched kTxnBegin
  // in the log. Recovery correctly discarded the cut transaction — but
  // left the log as it was, so records appended after the restart sat
  // inside the still-open region and a SECOND restart discarded them
  // too: acknowledged post-crash writes silently vanished. Recovery
  // must close the region (it logs a kTxnAbort) before serving.
  //
  // The crash here is a process kill, not power loss: WAL appends are
  // unbuffered writes, so the un-synced begin+data records ARE in the
  // file when the next open replays it.
  {
    auto db = Database::Open(dir_, DbOptions());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRelation("acct", AcctSchema(), {1, 0}).ok());
    ASSERT_TRUE((*db)->Insert("acct", FlatTuple{V("ada"), V("gold")}).ok());
    ASSERT_TRUE((*db)->Begin().ok());
    ASSERT_TRUE((*db)->Insert("acct", FlatTuple{V("bob"), V("gold")}).ok());
    // Crash 1: the transaction never commits.
    (void)(*db).release();
  }
  {
    // Restart 1: the cut transaction is gone; an autocommit write is
    // acknowledged (synced) on top.
    auto db = Database::Open(dir_, DbOptions());
    ASSERT_TRUE(db.ok()) << db.status();
    ASSERT_TRUE(
        (*db)->Insert("acct", FlatTuple{V("carol"), V("iron")}).ok());
    // Crash 2: no shutdown checkpoint — the next open replays the log.
    (void)(*db).release();
  }
  auto db = Database::Open(dir_, DbOptions());
  ASSERT_TRUE(db.ok()) << db.status();
  ASSERT_TRUE((*db)->VerifyIntegrity().ok());
  auto scan = (*db)->Scan("acct");
  ASSERT_TRUE(scan.ok());
  EXPECT_TRUE(scan->Contains(FlatTuple{V("ada"), V("gold")}));
  EXPECT_TRUE(scan->Contains(FlatTuple{V("carol"), V("iron")}))
      << "acknowledged post-crash write lost by the second restart";
  EXPECT_FALSE(scan->Contains(FlatTuple{V("bob"), V("gold")}));
}

TEST_F(CrashRecoveryTest, WalPositionsStayMonotoneAcrossCheckpointReopen) {
  // Regression: checkpointing truncates the WAL, and Reset() used to
  // rewind the LSN counter to 1 — so append → checkpoint → append →
  // reopen observed the same (epoch, lsn) twice, poisoning any log
  // shipper keyed on positions. The counter must only move forward,
  // surviving both the truncate (in memory) and the reopen (via the
  // manifest).
  std::vector<uint64_t> seen;
  {
    auto db = Database::Open(dir_, DbOptions());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRelation("acct", AcctSchema(), {1, 0}).ok());
    ASSERT_TRUE((*db)->Insert("acct", FlatTuple{V("a"), V("x")}).ok());
    seen.push_back((*db)->wal()->position().lsn);
    ASSERT_TRUE((*db)->Checkpoint().ok());
    ASSERT_TRUE((*db)->Insert("acct", FlatTuple{V("b"), V("y")}).ok());
    seen.push_back((*db)->wal()->position().lsn);
    EXPECT_GE((*db)->wal()->epoch(), 1u);
    // Crash (no shutdown checkpoint): reopen must restore the counter
    // from the manifest plus the surviving log.
    (void)(*db).release();
  }
  auto db = Database::Open(dir_, DbOptions());
  ASSERT_TRUE(db.ok()) << db.status();
  // Recovery released the recovered-record cache (it must not pin the
  // replayed log in RAM for the process lifetime).
  EXPECT_TRUE((*db)->wal()->recovered_records().empty());
  ASSERT_TRUE((*db)->Insert("acct", FlatTuple{V("c"), V("z")}).ok());
  seen.push_back((*db)->wal()->position().lsn);
  ASSERT_TRUE((*db)->Checkpoint().ok());
  ASSERT_TRUE((*db)->Insert("acct", FlatTuple{V("d"), V("w")}).ok());
  seen.push_back((*db)->wal()->position().lsn);
  for (size_t i = 1; i < seen.size(); ++i) {
    EXPECT_GT(seen[i], seen[i - 1])
        << "LSN reissued around checkpoint/reopen at step " << i;
  }
}

TEST_F(CrashRecoveryTest, RecoveryCountsOnlyAppliedOps) {
  // A committed 2-op transaction is 4 WAL records (begin, two data
  // records, commit) but exactly 2 operations. After a crash-reopen
  // the counter must say 2 — counting markers would make the
  // auto-checkpoint cadence drift on every recovery.
  {
    auto db = Database::Open(dir_, DbOptions());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(
        (*db)->CreateRelation("acct", AcctSchema(), {1, 0}).ok());
    ASSERT_TRUE((*db)->Checkpoint().ok());
    ASSERT_TRUE((*db)->Begin().ok());
    ASSERT_TRUE((*db)->Insert("acct", FlatTuple{V("a"), V("x")}).ok());
    ASSERT_TRUE((*db)->Insert("acct", FlatTuple{V("b"), V("y")}).ok());
    ASSERT_TRUE((*db)->Commit().ok());
    EXPECT_EQ((*db)->wal_records_since_checkpoint(), 2u);
    // Simulate a crash: leak the handle so no shutdown checkpoint runs.
    (void)(*db).release();
  }
  auto db = Database::Open(dir_, DbOptions());
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->wal_records_since_checkpoint(), 2u)
      << "replay must count applied data ops, not WAL records";
}

// ---------------------------------------------------------------------
// Sharded crash torture (DESIGN.md §13): run a workload that exercises
// the DDL fan-out (CREATE/DROP across all shards), point-routed
// inserts, and a fanned-out CHECKPOINT against a FaultInjectionEnv,
// kill the write stream at every mutating operation in turn, reboot,
// and reopen the shard group. Every shard must recover, the catalogs
// must converge (Open-time straggler healing), and the global state
// must be either the last acknowledged statement's post-state or the
// in-flight statement's — nothing in between, nothing phantom.
// ---------------------------------------------------------------------

constexpr size_t kTortureShards = 3;

/// Global logical state observed through a router session:
/// relation name -> COUNT(*).
using ShardState = std::map<std::string, uint64_t>;

Result<ShardState> ObserveShardState(server::ClientSession* session) {
  ShardState out;
  NF2_ASSIGN_OR_RETURN(std::string listed, session->Execute("LIST"));
  if (listed == "no relations") return out;
  size_t start = 0;
  while (start < listed.size()) {
    size_t nl = listed.find('\n', start);
    if (nl == std::string::npos) nl = listed.size();
    const std::string name = listed.substr(start, nl - start);
    start = nl + 1;
    if (name.empty()) continue;
    NF2_ASSIGN_OR_RETURN(
        std::string count,
        session->Execute(StrCat("SELECT COUNT(*) FROM ", name)));
    out[name] = std::strtoull(count.c_str(), nullptr, 10);
  }
  return out;
}

/// One workload statement plus its effect on the logical model.
struct ShardStep {
  std::string stmt;
  std::function<void(ShardState*)> apply;
};

std::vector<ShardStep> ShardWorkload() {
  auto ins = [](const char* rel) {
    return [rel](ShardState* s) { ++(*s)[rel]; };
  };
  std::vector<ShardStep> steps;
  steps.push_back({"CREATE RELATION acct (Owner STRING, Asset STRING) "
                   "FD Owner -> Asset",
                   [](ShardState* s) { (*s)["acct"] = 0; }});
  steps.push_back({"INSERT INTO acct VALUES (alice, gold)", ins("acct")});
  steps.push_back({"INSERT INTO acct VALUES (bob, silver)", ins("acct")});
  steps.push_back({"INSERT INTO acct VALUES (carol, tin)", ins("acct")});
  steps.push_back({"CHECKPOINT", [](ShardState*) {}});
  steps.push_back({"CREATE RELATION club (Member STRING, Team STRING)",
                   [](ShardState* s) { (*s)["club"] = 0; }});
  steps.push_back({"INSERT INTO club VALUES (dan, red)", ins("club")});
  steps.push_back({"INSERT INTO acct VALUES (erin, lead)", ins("acct")});
  steps.push_back({"CHECKPOINT", [](ShardState*) {}});
  steps.push_back({"DROP RELATION acct",
                   [](ShardState* s) { s->erase("acct"); }});
  steps.push_back({"INSERT INTO club VALUES (fay, blue)", ins("club")});
  return steps;
}

TEST_F(CrashRecoveryTest, ShardedDdlFanoutKillSweepConverges) {
  shard::ShardRouter::Options ropts;
  ropts.shards = kTortureShards;
  ropts.db = DbOptions();
  ropts.parallel_open = false;  // FaultInjectionEnv is single-threaded.
  const std::vector<ShardStep> steps = ShardWorkload();

  // Pass 1: count the workload's mutating operations (and sanity-check
  // that the workload runs clean without faults).
  uint64_t total_ops = 0;
  {
    FaultInjectionEnv fault(Env::Default(), /*seed=*/21);
    fault.Arm(UINT64_MAX);
    {
      auto router = shard::ShardRouter::Open(dir_, ropts, &fault);
      ASSERT_TRUE(router.ok()) << router.status();
      auto session = (*router)->NewClientSession();
      for (const ShardStep& step : steps) {
        auto res = session->Execute(step.stmt);
        ASSERT_TRUE(res.ok()) << step.stmt << ": " << res.status();
      }
    }
    total_ops = fault.op_count();
  }
  ASSERT_GT(total_ops, 0u);
  ASSERT_LT(total_ops, 100000u) << "workload op count exploded";

  // Same CI striding contract as EveryInjectionPointRecoversExactly.
  uint64_t shard_idx = 0;
  uint64_t total_shards = 1;
  if (const char* s = std::getenv("NF2_CRASH_SHARD_INDEX")) {
    shard_idx = std::strtoull(s, nullptr, 10);
  }
  if (const char* s = std::getenv("NF2_CRASH_TOTAL_SHARDS")) {
    total_shards = std::max<uint64_t>(1, std::strtoull(s, nullptr, 10));
  }
  ASSERT_LT(shard_idx, total_shards) << "NF2_CRASH_SHARD_INDEX out of range";

  for (uint64_t kill_at = 1 + shard_idx; kill_at <= total_ops;
       kill_at += total_shards) {
    ResetDir();
    FaultInjectionEnv fault(Env::Default(), /*seed=*/kill_at * 6151);
    fault.Arm(kill_at);
    size_t acked = 0;
    bool attempted_next = false;
    {
      auto router = shard::ShardRouter::Open(dir_, ropts, &fault);
      if (router.ok()) {
        auto session = (*router)->NewClientSession();
        for (const ShardStep& step : steps) {
          attempted_next = true;
          if (!session->Execute(step.stmt).ok()) break;
          attempted_next = false;
          ++acked;
        }
      }
    }
    ASSERT_TRUE(fault.killed()) << "trigger " << kill_at << " never fired";
    ASSERT_TRUE(fault.DropUnsyncedState().ok());

    // Reboot: reopen against the real Env (healing runs inside Open).
    shard::ShardRouter::Options reopen = ropts;
    reopen.parallel_open = true;
    auto router = shard::ShardRouter::Open(dir_, reopen);
    ASSERT_TRUE(router.ok()) << "kill_at=" << kill_at
                             << " recovery failed: " << router.status();

    // Catalog convergence across shards + per-shard integrity.
    std::vector<std::string> names0 = (*router)->shard_db(0)->ListRelations();
    std::sort(names0.begin(), names0.end());
    for (size_t i = 0; i < (*router)->shard_count(); ++i) {
      Status integrity = (*router)->shard_db(i)->VerifyIntegrity();
      ASSERT_TRUE(integrity.ok())
          << "kill_at=" << kill_at << " shard " << i << ": " << integrity;
      std::vector<std::string> names = (*router)->shard_db(i)->ListRelations();
      std::sort(names.begin(), names.end());
      EXPECT_EQ(names, names0)
          << "kill_at=" << kill_at << ": shard " << i
          << " catalog diverged after healing";
    }

    // The global state is the acked prefix's post-state, or — when a
    // statement was in flight at the kill — that statement's.
    ShardState model_acked;
    for (size_t i = 0; i < acked; ++i) steps[i].apply(&model_acked);
    ShardState model_inflight = model_acked;
    if (attempted_next && acked < steps.size()) {
      steps[acked].apply(&model_inflight);
    }
    auto session = (*router)->NewClientSession();
    auto state = ObserveShardState(session.get());
    ASSERT_TRUE(state.ok()) << "kill_at=" << kill_at << ": "
                            << state.status();
    EXPECT_TRUE(*state == model_acked || *state == model_inflight)
        << "kill_at=" << kill_at
        << " recovered to neither the acked nor the in-flight state "
        << "(acked " << acked << " of " << steps.size() << " statements)";
    if (::testing::Test::HasFailure()) break;  // One repro is enough.
  }
}

}  // namespace
}  // namespace nf2
