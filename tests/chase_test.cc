#include <gtest/gtest.h>

#include "dependency/chase.h"
#include "tests/test_util.h"

namespace nf2 {
namespace {

// Schema positions: 0=A, 1=B, 2=C, 3=D.

TEST(ChaseTest, FdTransitivityViaChase) {
  FdSet fds(3);
  fds.Add(AttrSet{0}, AttrSet{1});
  fds.Add(AttrSet{1}, AttrSet{2});
  Chase chase(fds, MvdSet(3));
  EXPECT_TRUE(chase.Implies(Fd{AttrSet{0}, AttrSet{2}}));
  EXPECT_FALSE(chase.Implies(Fd{AttrSet{2}, AttrSet{0}}));
}

TEST(ChaseTest, FdChaseAgreesWithClosure) {
  // The chase must decide FD implication identically to attribute-set
  // closure when only FDs are declared.
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    FdSet fds(4);
    for (int i = 0; i < 4; ++i) {
      AttrSet lhs, rhs;
      lhs.Add(rng.NextBelow(4));
      if (rng.NextBool()) lhs.Add(rng.NextBelow(4));
      rhs.Add(rng.NextBelow(4));
      fds.Add(lhs, rhs);
    }
    Chase chase(fds, MvdSet(4));
    for (uint64_t l = 1; l < 16; ++l) {
      for (size_t r = 0; r < 4; ++r) {
        AttrSet lhs;
        for (size_t i = 0; i < 4; ++i) {
          if ((l >> i) & 1) lhs.Add(i);
        }
        Fd probe{lhs, AttrSet{r}};
        EXPECT_EQ(chase.Implies(probe), fds.Implies(probe))
            << probe.ToString(Schema::OfStrings({"A", "B", "C", "D"}));
      }
    }
  }
}

TEST(ChaseTest, MvdComplementationRule) {
  // A ->-> B over {A,B,C} implies A ->-> C.
  MvdSet mvds(3);
  mvds.Add(AttrSet{0}, AttrSet{1});
  Chase chase(FdSet(3), mvds);
  EXPECT_TRUE(chase.Implies(Mvd{AttrSet{0}, AttrSet{2}}));
  EXPECT_TRUE(chase.Implies(Mvd{AttrSet{0}, AttrSet{1}}));
  // But not B ->-> A.
  EXPECT_FALSE(chase.Implies(Mvd{AttrSet{1}, AttrSet{0}}));
}

TEST(ChaseTest, MvdAugmentationRule) {
  // A ->-> B implies AD ->-> B (augment the LHS).
  MvdSet mvds(4);
  mvds.Add(AttrSet{0}, AttrSet{1});
  Chase chase(FdSet(4), mvds);
  EXPECT_TRUE(chase.Implies(Mvd{AttrSet{0, 3}, AttrSet{1}}));
}

TEST(ChaseTest, MvdTransitivityRule) {
  // A ->-> B and B ->-> C imply A ->-> C - B (= C here).
  MvdSet mvds(4);
  mvds.Add(AttrSet{0}, AttrSet{1});
  mvds.Add(AttrSet{1}, AttrSet{2});
  Chase chase(FdSet(4), mvds);
  EXPECT_TRUE(chase.Implies(Mvd{AttrSet{0}, AttrSet{2}}));
}

TEST(ChaseTest, FdPromotionRule) {
  // Every FD X -> Y implies the MVD X ->-> Y.
  FdSet fds(3);
  fds.Add(AttrSet{0}, AttrSet{1});
  Chase chase(fds, MvdSet(3));
  EXPECT_TRUE(chase.Implies(Mvd{AttrSet{0}, AttrSet{1}}));
}

TEST(ChaseTest, MvdIntersectionRule) {
  // X ->-> Y and X ->-> Z imply X ->-> Y ∩ Z. Over {A,B,C,D}:
  // A ->-> BC and A ->-> BD imply A ->-> B.
  MvdSet mvds(4);
  mvds.Add(AttrSet{0}, AttrSet{1, 2});
  mvds.Add(AttrSet{0}, AttrSet{1, 3});
  Chase chase(FdSet(4), mvds);
  EXPECT_TRUE(chase.Implies(Mvd{AttrSet{0}, AttrSet{1}}));
}

TEST(ChaseTest, TrivialMvdsAlwaysImplied) {
  Chase chase(FdSet(3), MvdSet(3));
  EXPECT_TRUE(chase.Implies(Mvd{AttrSet{0}, AttrSet{0}}));
  EXPECT_TRUE(chase.Implies(Mvd{AttrSet{0}, AttrSet{1, 2}}));
  // Non-trivial MVDs are NOT implied by nothing.
  EXPECT_FALSE(chase.Implies(Mvd{AttrSet{0}, AttrSet{1}}));
}

TEST(ChaseTest, ImpliedMvdsHoldOnSatisfyingRelations) {
  // Soundness: whenever the chase says Σ ⊨ σ, every relation
  // satisfying Σ satisfies σ.
  Rng rng(11);
  MvdSet declared(3);
  declared.Add(AttrSet{0}, AttrSet{1});
  Chase chase(FdSet(3), declared);
  std::vector<Mvd> probes = {
      {AttrSet{0}, AttrSet{2}}, {AttrSet{1}, AttrSet{0}},
      {AttrSet{2}, AttrSet{1}}, {AttrSet{0, 1}, AttrSet{2}}};
  for (int trial = 0; trial < 30; ++trial) {
    FlatRelation rel = RandomFlatRelation(&rng, 3, 3, 10);
    if (!declared.SatisfiedBy(rel)) continue;
    for (const Mvd& probe : probes) {
      if (chase.Implies(probe)) {
        EXPECT_TRUE(Satisfies(rel, probe))
            << "chase claims implication but a model violates it";
      }
    }
  }
}

TEST(ChaseTest, DependencyBasisSimpleMvd) {
  // A ->-> B over {A,B,C}: basis of {A} is {{B},{C}}.
  MvdSet mvds(3);
  mvds.Add(AttrSet{0}, AttrSet{1});
  Chase chase(FdSet(3), mvds);
  std::vector<AttrSet> basis = chase.DependencyBasis(AttrSet{0});
  ASSERT_EQ(basis.size(), 2u);
  EXPECT_EQ(basis[0], (AttrSet{1}));
  EXPECT_EQ(basis[1], (AttrSet{2}));
}

TEST(ChaseTest, DependencyBasisNoDependencies) {
  Chase chase(FdSet(3), MvdSet(3));
  std::vector<AttrSet> basis = chase.DependencyBasis(AttrSet{0});
  ASSERT_EQ(basis.size(), 1u);
  EXPECT_EQ(basis[0], (AttrSet{1, 2}));
}

TEST(ChaseTest, DependencyBasisWithFd) {
  // A -> B gives {B} as a singleton block; C,D stay together unless
  // split.
  FdSet fds(4);
  fds.Add(AttrSet{0}, AttrSet{1});
  Chase chase(fds, MvdSet(4));
  std::vector<AttrSet> basis = chase.DependencyBasis(AttrSet{0});
  ASSERT_EQ(basis.size(), 2u);
  EXPECT_EQ(basis[0], (AttrSet{1}));
  EXPECT_EQ(basis[1], (AttrSet{2, 3}));
}

TEST(ChaseTest, DependencyBasisBlocksAreImplied) {
  // Consistency: X ->-> B is implied for every basis block B, and for
  // unions of blocks, but not for sets cutting a block.
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    FdSet fds(4);
    MvdSet mvds(4);
    mvds.Add(AttrSet{rng.NextBelow(4)}, AttrSet{rng.NextBelow(4)});
    if (rng.NextBool()) {
      fds.Add(AttrSet{rng.NextBelow(4)}, AttrSet{rng.NextBelow(4)});
    }
    Chase chase(fds, mvds);
    AttrSet x{rng.NextBelow(4)};
    std::vector<AttrSet> basis = chase.DependencyBasis(x);
    AttrSet all_blocks;
    for (const AttrSet& block : basis) {
      EXPECT_TRUE(chase.Implies(Mvd{x, block}))
          << "basis block not implied: " << block.mask();
      all_blocks = all_blocks.Union(block);
    }
    EXPECT_EQ(all_blocks, AttrSet::All(4).Difference(x));
    // Unions of two blocks are implied too.
    if (basis.size() >= 2) {
      EXPECT_TRUE(chase.Implies(Mvd{x, basis[0].Union(basis[1])}));
    }
    // A proper, non-empty subset of a non-singleton block is NOT
    // implied.
    for (const AttrSet& block : basis) {
      if (block.size() < 2) continue;
      AttrSet cut{block.ToVector().front()};
      EXPECT_FALSE(chase.Implies(Mvd{x, cut}))
          << "sub-block unexpectedly implied";
    }
  }
}

TEST(ChaseTest, FourNfStyleQuery) {
  // The classic course/teacher/book example: C ->-> T | B.
  // From {C ->-> T}, check the full implied family.
  MvdSet mvds(3);
  mvds.Add(AttrSet{0}, AttrSet{1});
  Chase chase(FdSet(3), mvds);
  struct Probe {
    Mvd mvd;
    bool expected;
  };
  std::vector<Probe> probes = {
      {{AttrSet{0}, AttrSet{1}}, true},   // Declared.
      {{AttrSet{0}, AttrSet{2}}, true},   // Complement.
      {{AttrSet{0, 1}, AttrSet{2}}, true},// Augmented (also trivial here).
      {{AttrSet{1}, AttrSet{2}}, false},
      {{AttrSet{2}, AttrSet{0}}, false},
  };
  for (const Probe& probe : probes) {
    EXPECT_EQ(chase.Implies(probe.mvd), probe.expected)
        << probe.mvd.ToString(Schema::OfStrings({"C", "T", "B"}));
  }
}

}  // namespace
}  // namespace nf2
