#include <gtest/gtest.h>

#include "core/compose.h"

namespace nf2 {
namespace {

// The §3.2 worked example:
//   t1 = [A(a1,a2) B(b1,b2) C(c1)]
//   t2 = [A(a1,a2) B(b3)    C(c1)]
//   vB(t1,t2) = [A(a1,a2) B(b1,b2,b3) C(c1)]
NfrTuple T1() {
  return NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet{V("b1"), V("b2")},
                  ValueSet(V("c1"))};
}
NfrTuple T2() {
  return NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet(V("b3")),
                  ValueSet(V("c1"))};
}
NfrTuple T3() {
  return NfrTuple{ValueSet{V("a1"), V("a2")},
                  ValueSet{V("b1"), V("b2"), V("b3")}, ValueSet(V("c1"))};
}

TEST(ComposeTest, PaperExampleComposableOnB) {
  EXPECT_TRUE(ComposableOn(T1(), T2(), 1));
}

TEST(ComposeTest, PaperExampleNotComposableElsewhere) {
  EXPECT_FALSE(ComposableOn(T1(), T2(), 0));
  EXPECT_FALSE(ComposableOn(T1(), T2(), 2));
}

TEST(ComposeTest, PaperExampleResult) {
  EXPECT_EQ(Compose(T1(), T2(), 1), T3());
}

TEST(ComposeTest, CompositionIsSymmetric) {
  EXPECT_TRUE(ComposableOn(T2(), T1(), 1));
  EXPECT_EQ(Compose(T2(), T1(), 1), T3());
}

TEST(ComposeTest, IdenticalTuplesNotComposable) {
  // Composing equal tuples would merge duplicates, which well-formed
  // NFRs never contain.
  EXPECT_FALSE(ComposableOn(T1(), T1(), 0));
  EXPECT_FALSE(ComposableOn(T1(), T1(), 1));
}

TEST(ComposeTest, DegreeMismatchNotComposable) {
  NfrTuple shorter{ValueSet(V("a1"))};
  EXPECT_FALSE(ComposableOn(T1(), shorter, 0));
}

TEST(ComposeTest, OverlappingComponentSetsStillCompose) {
  // Def. 1 only requires equality off Ec; the Ec sets may overlap (the
  // result is the union). This happens during reduction of arbitrary
  // NFRs.
  NfrTuple a{ValueSet{V("x"), V("y")}, ValueSet(V("q"))};
  NfrTuple b{ValueSet{V("y"), V("z")}, ValueSet(V("q"))};
  ASSERT_TRUE(ComposableOn(a, b, 0));
  EXPECT_EQ(Compose(a, b, 0),
            (NfrTuple{ValueSet{V("x"), V("y"), V("z")}, ValueSet(V("q"))}));
}

TEST(ComposeDeathTest, ComposeRequiresComposability) {
  EXPECT_DEATH(Compose(T1(), T2(), 0), "precondition");
}

TEST(DecomposeTest, PaperExampleUndoesComposition) {
  // uB(b3)(t3) yields t1 and t2 (§3.2).
  Result<Decomposition> d = Decompose(T3(), 1, V("b3"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->extracted, T2());
  EXPECT_EQ(d->remainder, T1());
}

TEST(DecomposeTest, PaperExampleSecondSplit) {
  // uA(a1)(t3) yields [A(a1) B(b1,b2,b3) C(c1)] and
  // [A(a2) B(b1,b2,b3) C(c1)] (§3.2).
  Result<Decomposition> d = Decompose(T3(), 0, V("a1"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->extracted,
            (NfrTuple{ValueSet(V("a1")),
                      ValueSet{V("b1"), V("b2"), V("b3")},
                      ValueSet(V("c1"))}));
  EXPECT_EQ(d->remainder,
            (NfrTuple{ValueSet(V("a2")),
                      ValueSet{V("b1"), V("b2"), V("b3")},
                      ValueSet(V("c1"))}));
}

TEST(DecomposeTest, ValueNotInComponentErrors) {
  Result<Decomposition> d = Decompose(T3(), 1, V("b9"));
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

TEST(DecomposeTest, SingletonComponentErrors) {
  // Splitting C(c1) on c1 would leave an empty remainder.
  Result<Decomposition> d = Decompose(T3(), 2, V("c1"));
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kInvalidArgument);
}

TEST(DecomposeTest, PositionOutOfRangeErrors) {
  Result<Decomposition> d = Decompose(T3(), 5, V("b1"));
  ASSERT_FALSE(d.ok());
  EXPECT_EQ(d.status().code(), StatusCode::kOutOfRange);
}

TEST(DecomposeSubsetTest, SplitsProperSubset) {
  Result<Decomposition> d =
      DecomposeSubset(T3(), 1, ValueSet{V("b1"), V("b3")});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->extracted.at(1), (ValueSet{V("b1"), V("b3")}));
  EXPECT_EQ(d->remainder.at(1), ValueSet(V("b2")));
  // Other components untouched.
  EXPECT_EQ(d->extracted.at(0), T3().at(0));
  EXPECT_EQ(d->remainder.at(2), T3().at(2));
}

TEST(DecomposeSubsetTest, WholeComponentErrors) {
  Result<Decomposition> d =
      DecomposeSubset(T3(), 1, ValueSet{V("b1"), V("b2"), V("b3")});
  EXPECT_FALSE(d.ok());
}

TEST(DecomposeSubsetTest, EmptySubsetErrors) {
  EXPECT_FALSE(DecomposeSubset(T3(), 1, ValueSet()).ok());
}

TEST(DecomposeSubsetTest, NonSubsetErrors) {
  EXPECT_FALSE(DecomposeSubset(T3(), 1, ValueSet{V("b1"), V("b9")}).ok());
}

TEST(ComposeDecomposeTest, RoundTripPreservesInformation) {
  // Decomposition is the reverse of composition (§3.2): splitting and
  // re-composing is the identity.
  Result<Decomposition> d = Decompose(T3(), 1, V("b3"));
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(ComposableOn(d->extracted, d->remainder, 1));
  EXPECT_EQ(Compose(d->extracted, d->remainder, 1), T3());
}

TEST(ComposeDecomposeTest, ExpansionIsPartitioned) {
  // A decomposition partitions the expansion: no tuple lost or created.
  Result<Decomposition> d = Decompose(T3(), 0, V("a1"));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->extracted.ExpandedCount() + d->remainder.ExpandedCount(),
            T3().ExpandedCount());
  for (const FlatTuple& ft : d->extracted.Expand()) {
    EXPECT_TRUE(T3().ExpansionContains(ft));
    EXPECT_FALSE(d->remainder.ExpansionContains(ft));
  }
}

}  // namespace
}  // namespace nf2
