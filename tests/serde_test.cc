#include <gtest/gtest.h>

#include "core/nest.h"
#include "storage/serde.h"
#include "tests/test_util.h"

namespace nf2 {
namespace {

TEST(BufferTest, PrimitiveRoundTrip) {
  BufferWriter w;
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI64(-42);
  w.PutDouble(2.5);
  w.PutString("hello");
  BufferReader r(w.data());
  EXPECT_EQ(*r.GetU8(), 0xab);
  EXPECT_EQ(*r.GetU16(), 0x1234);
  EXPECT_EQ(*r.GetU32(), 0xdeadbeefu);
  EXPECT_EQ(*r.GetU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(*r.GetI64(), -42);
  EXPECT_DOUBLE_EQ(*r.GetDouble(), 2.5);
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BufferTest, TruncationIsCorruption) {
  BufferWriter w;
  w.PutU32(7);
  BufferReader r(w.data());
  ASSERT_TRUE(r.GetU32().ok());
  Result<uint64_t> bad = r.GetU64();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
}

TEST(BufferTest, StringWithEmbeddedNulls) {
  BufferWriter w;
  std::string s("a\0b", 3);
  w.PutString(s);
  BufferReader r(w.data());
  EXPECT_EQ(*r.GetString(), s);
}

TEST(Crc32Test, KnownVectorsAndSensitivity) {
  // Standard check value for "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_NE(Crc32("abc"), Crc32("abd"));
}

TEST(Crc32Test, SlicedBulkPathMatchesBytewiseReference) {
  // The production Crc32 folds 8 bytes per step; on-disk CRCs (WAL
  // frames, pages, the checkpoint manifest) depend on it staying
  // bit-identical to the plain bytewise CRC-32 at every length,
  // including tails shorter than one fold.
  uint32_t table[256];
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  auto reference = [&](std::string_view data) {
    uint32_t crc = 0xffffffffu;
    for (char ch : data) {
      crc = table[(crc ^ static_cast<uint8_t>(ch)) & 0xff] ^ (crc >> 8);
    }
    return crc ^ 0xffffffffu;
  };
  std::string data;
  for (size_t i = 0; i < 4100; ++i) {
    data.push_back(static_cast<char>((i * 131 + 17) & 0xff));
    if (i < 64 || i % 257 == 0 || i >= 4090) {
      EXPECT_EQ(Crc32(data), reference(data)) << "length " << data.size();
    }
  }
}

TEST(SerdeTest, ValueRoundTripAllTypes) {
  for (const Value& v :
       {Value::Null(), Value::Bool(true), Value::Bool(false),
        Value::Int(-123456789), Value::Double(3.14159),
        Value::String("nf2"), Value::String("")}) {
    BufferWriter w;
    EncodeValue(v, &w);
    BufferReader r(w.data());
    Result<Value> back = DecodeValue(&r);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, v);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(SerdeTest, BadValueTagIsCorruption) {
  BufferWriter w;
  w.PutU8(99);
  BufferReader r(w.data());
  EXPECT_EQ(DecodeValue(&r).status().code(), StatusCode::kCorruption);
}

TEST(SerdeTest, ValueSetRoundTrip) {
  ValueSet s{V("c3"), V("c1"), V("c2")};
  BufferWriter w;
  EncodeValueSet(s, &w);
  BufferReader r(w.data());
  Result<ValueSet> back = DecodeValueSet(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, s);
}

TEST(SerdeTest, FlatTupleRoundTrip) {
  FlatTuple t{V("s1"), Value::Int(7), Value::Double(0.5)};
  BufferWriter w;
  EncodeFlatTuple(t, &w);
  BufferReader r(w.data());
  Result<FlatTuple> back = DecodeFlatTuple(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);
}

TEST(SerdeTest, NfrTupleRoundTrip) {
  NfrTuple t{ValueSet{V("a1"), V("a2")}, ValueSet(V("b1")),
             ValueSet{Value::Int(1), Value::Int(2), Value::Int(3)}};
  BufferWriter w;
  EncodeNfrTuple(t, &w);
  BufferReader r(w.data());
  Result<NfrTuple> back = DecodeNfrTuple(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);
}

TEST(SerdeTest, SchemaRoundTrip) {
  Schema s({{"Id", ValueType::kInt},
            {"Name", ValueType::kString},
            {"Score", ValueType::kDouble}});
  BufferWriter w;
  EncodeSchema(s, &w);
  BufferReader r(w.data());
  Result<Schema> back = DecodeSchema(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, s);
}

TEST(SerdeTest, RelationRoundTrip) {
  Rng rng(55);
  FlatRelation flat = RandomFlatRelation(&rng, 3, 4, 20);
  NfrRelation nested = CanonicalForm(flat, {2, 1, 0});
  BufferWriter w;
  EncodeNfrRelation(nested, &w);
  BufferReader r(w.data());
  Result<NfrRelation> back = DecodeNfrRelation(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->EqualsAsSet(nested));
  EXPECT_EQ(back->Expand(), flat);
}

TEST(SerdeTest, RelationDecodingRejectsGarbage) {
  std::string garbage = "not a relation at all";
  BufferReader r(garbage);
  EXPECT_FALSE(DecodeNfrRelation(&r).ok());
}

}  // namespace
}  // namespace nf2
