#include <gtest/gtest.h>

#include "core/relation.h"
#include "dependency/fd.h"

namespace nf2 {
namespace {

// Schema positions: 0=A, 1=B, 2=C, 3=D.
Schema Abcd() { return Schema::OfStrings({"A", "B", "C", "D"}); }

TEST(FdTest, TrivialDetection) {
  EXPECT_TRUE((Fd{AttrSet{0, 1}, AttrSet{0}}).IsTrivial());
  EXPECT_FALSE((Fd{AttrSet{0}, AttrSet{1}}).IsTrivial());
}

TEST(FdTest, ToStringUsesNames) {
  EXPECT_EQ((Fd{AttrSet{0, 1}, AttrSet{2}}).ToString(Abcd()), "{A,B}->{C}");
}

TEST(FdSetTest, ClosureBasics) {
  // A->B, B->C: closure(A) = {A,B,C}.
  FdSet fds(4);
  fds.Add(AttrSet{0}, AttrSet{1});
  fds.Add(AttrSet{1}, AttrSet{2});
  EXPECT_EQ(fds.Closure(AttrSet{0}), (AttrSet{0, 1, 2}));
  EXPECT_EQ(fds.Closure(AttrSet{1}), (AttrSet{1, 2}));
  EXPECT_EQ(fds.Closure(AttrSet{3}), (AttrSet{3}));
}

TEST(FdSetTest, ClosureOfEmptySet) {
  FdSet fds(3);
  fds.Add(AttrSet{}, AttrSet{1});  // {} -> B: B is constant.
  EXPECT_EQ(fds.Closure(AttrSet{}), (AttrSet{1}));
}

TEST(FdSetTest, Implies) {
  FdSet fds(4);
  fds.Add(AttrSet{0}, AttrSet{1});
  fds.Add(AttrSet{1}, AttrSet{2});
  EXPECT_TRUE(fds.Implies(Fd{AttrSet{0}, AttrSet{2}}));       // Transitivity.
  EXPECT_TRUE(fds.Implies(Fd{AttrSet{0, 3}, AttrSet{2, 3}})); // Augmentation.
  EXPECT_TRUE(fds.Implies(Fd{AttrSet{0, 1}, AttrSet{0}}));    // Reflexivity.
  EXPECT_FALSE(fds.Implies(Fd{AttrSet{2}, AttrSet{0}}));
}

TEST(FdSetTest, Superkey) {
  FdSet fds(3);
  fds.Add(AttrSet{0}, AttrSet{1, 2});
  EXPECT_TRUE(fds.IsSuperkey(AttrSet{0}));
  EXPECT_TRUE(fds.IsSuperkey(AttrSet{0, 1}));
  EXPECT_FALSE(fds.IsSuperkey(AttrSet{1, 2}));
}

TEST(FdSetTest, CandidateKeysSimple) {
  // A->B, B->C over {A,B,C}: only key is {A}.
  FdSet fds(3);
  fds.Add(AttrSet{0}, AttrSet{1});
  fds.Add(AttrSet{1}, AttrSet{2});
  std::vector<AttrSet> keys = fds.CandidateKeys();
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (AttrSet{0}));
}

TEST(FdSetTest, CandidateKeysMultiple) {
  // A->B, B->A, AB is cyclic: keys {A,C?}: degree 3 with C free:
  // A->B, B->A: keys are {A,C} and {B,C}.
  FdSet fds(3);
  fds.Add(AttrSet{0}, AttrSet{1});
  fds.Add(AttrSet{1}, AttrSet{0});
  std::vector<AttrSet> keys = fds.CandidateKeys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], (AttrSet{0, 2}));
  EXPECT_EQ(keys[1], (AttrSet{1, 2}));
}

TEST(FdSetTest, CandidateKeysNoFds) {
  FdSet fds(2);
  std::vector<AttrSet> keys = fds.CandidateKeys();
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], (AttrSet{0, 1}));
}

TEST(FdSetTest, MinimalCoverSplitsRhs) {
  FdSet fds(3);
  fds.Add(AttrSet{0}, AttrSet{1, 2});
  FdSet cover = fds.MinimalCover();
  EXPECT_EQ(cover.fds().size(), 2u);
  for (const Fd& fd : cover.fds()) {
    EXPECT_EQ(fd.rhs.size(), 1u);
    EXPECT_EQ(fd.lhs, (AttrSet{0}));
  }
}

TEST(FdSetTest, MinimalCoverRemovesExtraneousLhs) {
  // A->B and AB->C: the cover reduces AB->C to A->C.
  FdSet fds(3);
  fds.Add(AttrSet{0}, AttrSet{1});
  fds.Add(AttrSet{0, 1}, AttrSet{2});
  FdSet cover = fds.MinimalCover();
  bool found_a_to_c = false;
  for (const Fd& fd : cover.fds()) {
    if (fd.rhs == (AttrSet{2})) {
      EXPECT_EQ(fd.lhs, (AttrSet{0}));
      found_a_to_c = true;
    }
  }
  EXPECT_TRUE(found_a_to_c);
}

TEST(FdSetTest, MinimalCoverRemovesRedundantFds) {
  // A->B, B->C, A->C: A->C is redundant.
  FdSet fds(3);
  fds.Add(AttrSet{0}, AttrSet{1});
  fds.Add(AttrSet{1}, AttrSet{2});
  fds.Add(AttrSet{0}, AttrSet{2});
  FdSet cover = fds.MinimalCover();
  EXPECT_EQ(cover.fds().size(), 2u);
  // The cover still implies the original FDs.
  for (const Fd& fd : fds.fds()) {
    EXPECT_TRUE(cover.Implies(fd));
  }
}

TEST(FdSetTest, MinimalCoverEquivalentToOriginal) {
  FdSet fds(4);
  fds.Add(AttrSet{0}, AttrSet{1, 2});
  fds.Add(AttrSet{1, 2}, AttrSet{3});
  fds.Add(AttrSet{0, 3}, AttrSet{1});
  FdSet cover = fds.MinimalCover();
  for (const Fd& fd : fds.fds()) {
    EXPECT_TRUE(cover.Implies(fd)) << fd.ToString(Abcd());
  }
  for (const Fd& fd : cover.fds()) {
    EXPECT_TRUE(fds.Implies(fd)) << fd.ToString(Abcd());
  }
}

TEST(FdSatisfactionTest, HoldsAndFails) {
  FlatRelation rel = MakeStringRelation({"A", "B"}, {{"a1", "b1"},
                                                     {"a2", "b1"},
                                                     {"a3", "b2"}});
  EXPECT_TRUE(Satisfies(rel, Fd{AttrSet{0}, AttrSet{1}}));  // A->B holds.
  EXPECT_FALSE(Satisfies(rel, Fd{AttrSet{1}, AttrSet{0}})); // B->A fails.
}

TEST(FdSatisfactionTest, SetSatisfaction) {
  FlatRelation rel = MakeStringRelation({"A", "B", "C"},
                                        {{"a1", "b1", "c1"},
                                         {"a2", "b1", "c1"}});
  FdSet good(3);
  good.Add(AttrSet{0}, AttrSet{1, 2});
  EXPECT_TRUE(good.SatisfiedBy(rel));
  FdSet bad(3);
  bad.Add(AttrSet{1}, AttrSet{0});
  EXPECT_FALSE(bad.SatisfiedBy(rel));
}

TEST(FdSetTest, ToStringRendersAll) {
  FdSet fds(4);
  fds.Add(AttrSet{0}, AttrSet{1});
  fds.Add(AttrSet{1, 2}, AttrSet{3});
  EXPECT_EQ(fds.ToString(Abcd()), "{{A}->{B}; {B,C}->{D}}");
}

TEST(FdSetDeathTest, OutOfRangeAttrsFatal) {
  FdSet fds(2);
  EXPECT_DEATH(fds.Add(AttrSet{0}, AttrSet{5}), "outside the schema");
}

}  // namespace
}  // namespace nf2
