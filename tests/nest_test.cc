#include <gtest/gtest.h>

#include "core/irreducible.h"
#include "core/nest.h"
#include "tests/test_util.h"

namespace nf2 {
namespace {

FlatRelation Example2Flat() {
  // Example 2's six tuples over A, B, C.
  return MakeStringRelation({"A", "B", "C"}, {{"a1", "b1", "c2"},
                                              {"a1", "b2", "c1"},
                                              {"a1", "b2", "c2"},
                                              {"a2", "b1", "c1"},
                                              {"a2", "b1", "c2"},
                                              {"a2", "b2", "c1"}});
}

TEST(PermutationTest, Identity) {
  EXPECT_EQ(IdentityPermutation(3), (Permutation{0, 1, 2}));
  EXPECT_TRUE(IdentityPermutation(0).empty());
}

TEST(PermutationTest, FromNames) {
  Schema s = Schema::OfStrings({"A", "B", "C"});
  Result<Permutation> p = PermutationFromNames(s, {"C", "A", "B"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, (Permutation{2, 0, 1}));
}

TEST(PermutationTest, FromNamesErrors) {
  Schema s = Schema::OfStrings({"A", "B"});
  EXPECT_FALSE(PermutationFromNames(s, {"A"}).ok());
  EXPECT_FALSE(PermutationFromNames(s, {"A", "Z"}).ok());
  EXPECT_FALSE(PermutationFromNames(s, {"A", "A"}).ok());
}

TEST(PermutationTest, Validation) {
  EXPECT_TRUE(IsValidPermutation({1, 0, 2}, 3));
  EXPECT_FALSE(IsValidPermutation({1, 1, 2}, 3));
  EXPECT_FALSE(IsValidPermutation({0, 1}, 3));
  EXPECT_FALSE(IsValidPermutation({0, 3, 1}, 3));
}

TEST(PermutationTest, AllPermutationsCountsFactorial) {
  EXPECT_EQ(AllPermutations(1).size(), 1u);
  EXPECT_EQ(AllPermutations(3).size(), 6u);
  EXPECT_EQ(AllPermutations(4).size(), 24u);
}

TEST(NestTest, NestOnGroupsByRemainingComponents) {
  // Example 1: nesting over A gives [A(a1,a2) B(b1)], [A(a2,a3) B(b2)].
  FlatRelation flat = MakeStringRelation({"A", "B"}, {{"a1", "b1"},
                                                      {"a2", "b1"},
                                                      {"a2", "b2"},
                                                      {"a3", "b2"}});
  NfrRelation nested = NestOn(NfrRelation::FromFlat(flat), 0);
  ASSERT_EQ(nested.size(), 2u);
  NfrRelation expected(flat.schema());
  expected.Add(NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet(V("b1"))});
  expected.Add(NfrTuple{ValueSet{V("a2"), V("a3")}, ValueSet(V("b2"))});
  EXPECT_TRUE(nested.EqualsAsSet(expected));
}

TEST(NestTest, NestPreservesInformation) {
  // Composition "cannot lose or add any information" (§3.2).
  Rng rng(42);
  FlatRelation flat = RandomFlatRelation(&rng, 3, 3, 12);
  NfrRelation nested = NestOn(NfrRelation::FromFlat(flat), 1);
  EXPECT_EQ(nested.Expand(), flat);
}

TEST(NestTest, NestOnIsIdempotent) {
  Rng rng(43);
  FlatRelation flat = RandomFlatRelation(&rng, 3, 3, 15);
  NfrRelation once = NestOn(NfrRelation::FromFlat(flat), 2);
  NfrRelation twice = NestOn(once, 2);
  EXPECT_TRUE(once.EqualsAsSet(twice));
}

TEST(NestTest, UnnestOnSplitsToSingletons) {
  NfrRelation r(Schema::OfStrings({"A", "B"}));
  r.Add(NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet{V("b1"), V("b2")}});
  NfrRelation u = UnnestOn(r, 0);
  EXPECT_EQ(u.size(), 2u);
  for (const NfrTuple& t : u.tuples()) {
    EXPECT_TRUE(t.at(0).IsSingleton());
    EXPECT_EQ(t.at(1), (ValueSet{V("b1"), V("b2")}));
  }
}

TEST(NestTest, UnnestInvertsNest) {
  // V_Ei then unnest on Ei then re-nest gives the same relation; and
  // nest(unnest(R)) == R for a relation nested on that attribute.
  Rng rng(44);
  FlatRelation flat = RandomFlatRelation(&rng, 3, 3, 12);
  NfrRelation nested = NestOn(NfrRelation::FromFlat(flat), 0);
  EXPECT_TRUE(NestOn(UnnestOn(nested, 0), 0).EqualsAsSet(nested));
}

TEST(NestTest, UnnestAllEqualsExpand) {
  Rng rng(45);
  FlatRelation flat = RandomFlatRelation(&rng, 2, 4, 10);
  NfrRelation nested = NestOn(NfrRelation::FromFlat(flat), 1);
  EXPECT_EQ(UnnestAll(nested), flat);
}

TEST(NestTest, CanonicalFormIsIrreducible) {
  // Definition 5: "it is easy to show that VP(R) is irreducible."
  Rng rng(46);
  for (int trial = 0; trial < 20; ++trial) {
    FlatRelation flat = RandomFlatRelation(&rng, 3, 3, 10);
    for (const Permutation& perm : AllPermutations(3)) {
      NfrRelation canonical = CanonicalForm(flat, perm);
      EXPECT_TRUE(IsIrreducible(canonical))
          << "not irreducible for seed trial " << trial;
      EXPECT_EQ(canonical.Expand(), flat);
    }
  }
}

TEST(NestTest, Example2CanonicalFormsHaveFourTuples) {
  // Example 2: "every canonical form contains 4 tuples."
  FlatRelation flat = Example2Flat();
  for (const Permutation& perm : AllPermutations(3)) {
    NfrRelation canonical = CanonicalForm(flat, perm);
    EXPECT_EQ(canonical.size(), 4u);
  }
}

TEST(NestTest, Example2SpecificCanonicalForm) {
  // The paper lists RB, the canonical form "after applying the
  // operation V_AB(R3)". Computing both nest orders by hand shows the
  // listed tuples correspond to nesting A first, then B (and nesting C
  // afterwards changes nothing for this data), so in our
  // application-order convention RB = CanonicalForm(R3, {A, B, C}).
  FlatRelation flat = Example2Flat();
  NfrRelation rb = CanonicalForm(flat, Permutation{0, 1, 2});
  NfrRelation expected(flat.schema());
  expected.Add(NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet(V("b1")),
                        ValueSet(V("c2"))});
  expected.Add(NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet(V("b2")),
                        ValueSet(V("c1"))});
  expected.Add(NfrTuple{ValueSet(V("a1")), ValueSet(V("b2")),
                        ValueSet(V("c2"))});
  expected.Add(NfrTuple{ValueSet(V("a2")), ValueSet(V("b1")),
                        ValueSet(V("c1"))});
  EXPECT_TRUE(rb.EqualsAsSet(expected)) << rb.ToString();
}

TEST(NestTest, NestSequenceOrderMatters) {
  // Different permutations generally give different canonical forms
  // (that is why the paper has n! of them).
  FlatRelation flat = MakeStringRelation({"A", "B"}, {{"a1", "b1"},
                                                      {"a1", "b2"},
                                                      {"a2", "b1"}});
  NfrRelation nest_a_first = CanonicalForm(flat, Permutation{0, 1});
  NfrRelation nest_b_first = CanonicalForm(flat, Permutation{1, 0});
  EXPECT_FALSE(nest_a_first.EqualsAsSet(nest_b_first));
  EXPECT_TRUE(nest_a_first.EquivalentTo(nest_b_first));
}

// ---- Theorem 2 as a parameterized property test ----------------------
//
// "A canonical form relation as a result of VP is unique — the final
// form is independent of the sequence in composition of tuple-pairs in
// each VEi operation."
class Theorem2Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem2Test, RandomizedCompositionOrderReachesSameNest) {
  Rng data_rng(GetParam());
  FlatRelation flat = RandomFlatRelation(&data_rng, 3, 3, 14);
  NfrRelation start = NfrRelation::FromFlat(flat);
  for (size_t attr = 0; attr < 3; ++attr) {
    NfrRelation direct = NestOn(start, attr);
    Rng order_rng(GetParam() * 977 + attr);
    NfrRelation randomized = RandomizedNestOn(start, attr, &order_rng);
    EXPECT_TRUE(direct.EqualsAsSet(randomized))
        << "attr=" << attr << "\ndirect:\n"
        << direct.ToString() << "randomized:\n"
        << randomized.ToString();
  }
}

TEST_P(Theorem2Test, FullCanonicalFormUniqueAcrossCompositionOrders) {
  Rng data_rng(GetParam() + 5000);
  FlatRelation flat = RandomFlatRelation(&data_rng, 3, 3, 12);
  Permutation perm{2, 0, 1};
  NfrRelation direct = CanonicalForm(flat, perm);
  NfrRelation randomized = NfrRelation::FromFlat(flat);
  Rng order_rng(GetParam() * 31 + 7);
  for (size_t attr : perm) {
    randomized = RandomizedNestOn(randomized, attr, &order_rng);
  }
  EXPECT_TRUE(direct.EqualsAsSet(randomized));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem2Test,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace nf2
