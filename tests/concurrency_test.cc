// Concurrent-session tests over the engine gate (engine/concurrency.h,
// server/session.h) — no sockets: sessions are driven directly so ASan/
// TSan failures point straight at engine-level races.
//
// The torture test's oracle argument: with a single writer session, the
// reader interleaving cannot affect the final state (readers take only
// shared locks and never mutate), so the database after the concurrent
// run must be bit-identical to replaying the writer's statement stream
// into a fresh single-threaded database.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "engine/concurrency.h"
#include "engine/database.h"
#include "engine/snapshot.h"
#include "nfrql/parser.h"
#include "server/session.h"
#include "storage/serde.h"
#include "util/string_util.h"

namespace nf2 {
namespace {

using server::Session;
using server::SessionManager;

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("nf2_concurrency_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    RemoveDirs();
  }
  void TearDown() override { RemoveDirs(); }

  void RemoveDirs() {
    std::filesystem::remove_all(dir_);
    std::filesystem::remove_all(dir_ + "_torture");
    std::filesystem::remove_all(dir_ + "_oracle");
  }

  std::string dir_;
};

/// The deterministic §4 write stream the torture test and its oracle
/// both replay: inserts streamed over a small value domain (forcing
/// heavy composition/nesting) with periodic deletes of earlier tuples.
std::vector<std::string> WriterStatements(int rounds) {
  std::vector<std::string> stmts;
  stmts.push_back(
      "CREATE RELATION takes (Student STRING, Course STRING, Club STRING) "
      "MVD Student ->-> Course");
  // The small moduli force heavy value sharing (composition-heavy §4
  // paths); the shadow set keeps the stream valid — no duplicate
  // inserts, no deletes of absent tuples.
  std::set<std::string> live;
  for (int i = 0; i < rounds; ++i) {
    const std::string tuple = StrCat("s", (i * 13) % 7, ", c", (i * 7) % 5,
                                     ", k", i % 3);
    if (live.insert(tuple).second) {
      stmts.push_back(StrCat("INSERT INTO takes VALUES (", tuple, ")"));
    }
    if (i % 4 == 3 && !live.empty()) {
      auto victim = live.begin();
      stmts.push_back(StrCat("DELETE FROM takes VALUES (", *victim, ")"));
      live.erase(victim);
    }
  }
  return stmts;
}

/// Serializes every relation of `db` to bytes — the bit-identical
/// comparison the acceptance criteria ask for.
std::string SerializeAllRelations(Database* db) {
  std::string out;
  for (const std::string& name : db->ListRelations()) {
    auto rel = db->Relation(name);
    EXPECT_TRUE(rel.ok()) << name;
    if (!rel.ok()) continue;
    BufferWriter w;
    EncodeNfrRelation(**rel, &w);
    out += name;
    out += '\0';
    out += w.data();
  }
  return out;
}

/// Serializes every relation reachable from `snap` — same byte format
/// as SerializeAllRelations, but answered entirely from the snapshot.
std::string SerializeSnapshot(const DatabaseSnapshot& snap) {
  std::string out;
  for (const std::string& name : snap.ListRelations()) {
    auto rel = snap.Relation(name);
    EXPECT_TRUE(rel.ok()) << name;
    if (!rel.ok()) continue;
    BufferWriter w;
    EncodeNfrRelation(**rel, &w);
    out += name;
    out += '\0';
    out += w.data();
  }
  return out;
}

TEST(IsReadOnlyStatementTest, Classification) {
  auto classify = [](const std::string& source) {
    auto stmt = ParseStatement(source);
    EXPECT_TRUE(stmt.ok()) << source;
    return IsReadOnlyStatement(*stmt);
  };
  EXPECT_TRUE(classify("SELECT * FROM r"));
  EXPECT_TRUE(classify("SELECT COUNT(*) FROM r"));
  EXPECT_TRUE(classify("SHOW r"));
  EXPECT_TRUE(classify("DESCRIBE r"));
  EXPECT_TRUE(classify("NEST r ON a"));
  EXPECT_TRUE(classify("UNNEST r ON a"));
  EXPECT_TRUE(classify("LIST"));
  EXPECT_TRUE(classify("STATS r"));
  // EXPLAIN never executes, so even EXPLAIN of a mutation is a read.
  EXPECT_TRUE(classify("EXPLAIN SELECT * FROM r"));
  EXPECT_TRUE(classify("EXPLAIN INSERT INTO r VALUES (a)"));
  // PROFILE executes its inner statement: classify as the inner does.
  EXPECT_TRUE(classify("PROFILE SELECT * FROM r"));
  EXPECT_FALSE(classify("PROFILE INSERT INTO r VALUES (a)"));

  EXPECT_FALSE(classify("CREATE RELATION r (a STRING)"));
  EXPECT_FALSE(classify("DROP RELATION r"));
  EXPECT_FALSE(classify("INSERT INTO r VALUES (a)"));
  EXPECT_FALSE(classify("DELETE FROM r VALUES (a)"));
  EXPECT_FALSE(classify("UPDATE r SET a = b"));
  EXPECT_FALSE(classify("CHECKPOINT"));
  EXPECT_FALSE(classify("BEGIN"));
  EXPECT_FALSE(classify("COMMIT"));
  EXPECT_FALSE(classify("ROLLBACK"));
}

// The acceptance-criteria torture: 8 sessions — one writer streaming
// §4 inserts/deletes, seven readers hammering every read-only statement
// shape — then a bit-identical comparison against the single-threaded
// oracle replay.
TEST_F(ConcurrencyTest, EightSessionTortureMatchesSingleThreadedOracle) {
  constexpr int kReaders = 7;
  constexpr int kRounds = 200;
  const std::vector<std::string> writes = WriterStatements(kRounds);

  std::string concurrent_bytes;
  {
    auto db = Database::Open(dir_ + "_torture");
    ASSERT_TRUE(db.ok());
    SessionManager sessions(db->get());

    std::atomic<bool> writer_done{false};
    std::atomic<int> read_failures{0};
    std::atomic<long> reads_done{0};

    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&sessions, &writer_done, &read_failures,
                            &reads_done, r] {
        auto session = sessions.NewSession();
        const std::vector<std::string> queries = {
            "SELECT COUNT(*) FROM takes",
            "SELECT * FROM takes",
            "SHOW takes",
            "DESCRIBE takes",
            "EXPLAIN SELECT Student FROM takes WHERE Course = c1",
            "STATS takes",
            "LIST",
            "\\metrics prom",
        };
        size_t i = static_cast<size_t>(r);
        while (!writer_done.load(std::memory_order_acquire)) {
          auto out = session->Execute(queries[i++ % queries.size()]);
          // Until the writer's CREATE lands, NotFound is the correct
          // answer; any other failure is a bug.
          if (!out.ok() && out.status().code() != StatusCode::kNotFound) {
            ++read_failures;
          }
          ++reads_done;
        }
      });
    }

    {
      auto writer = sessions.NewSession();
      for (const std::string& stmt : writes) {
        auto out = writer->Execute(stmt);
        ASSERT_TRUE(out.ok()) << stmt << ": " << out.status().ToString();
      }
    }
    writer_done.store(true, std::memory_order_release);
    for (std::thread& t : readers) t.join();

    EXPECT_EQ(read_failures.load(), 0);
    EXPECT_GT(reads_done.load(), 0);
    ASSERT_TRUE((*db)->VerifyIntegrity().ok());
    concurrent_bytes = SerializeAllRelations(db->get());
  }

  // Oracle: same write stream, no concurrency, fresh database.
  auto oracle = Database::Open(dir_ + "_oracle");
  ASSERT_TRUE(oracle.ok());
  {
    SessionManager sessions(oracle->get());
    auto session = sessions.NewSession();
    for (const std::string& stmt : writes) {
      ASSERT_TRUE(session->Execute(stmt).ok()) << stmt;
    }
  }
  ASSERT_TRUE((*oracle)->VerifyIntegrity().ok());
  const std::string oracle_bytes = SerializeAllRelations(oracle->get());

  ASSERT_FALSE(oracle_bytes.empty());
  EXPECT_EQ(concurrent_bytes, oracle_bytes)
      << "concurrent final state diverged from single-threaded oracle";
}

// MVCC torture (DESIGN.md §9): readers pin snapshots while a writer
// streams §4 mutations, and every pinned version must be bit-identical
// to the shadow-oracle state the writer recorded at that version's
// commit boundary — a reader can observe any published state, but
// never a torn or mutated-in-place one. Runs under TSan via the
// concurrency ctest label.
TEST_F(ConcurrencyTest, PinnedSnapshotsMatchShadowOracleStates) {
  constexpr int kReaders = 4;
  constexpr int kRounds = 150;
  const std::vector<std::string> writes = WriterStatements(kRounds);

  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  SessionManager sessions(db->get());

  // Shadow oracle: serialized state per published version, recorded by
  // the writer after each statement. Versions are published inside
  // Execute and recorded just after, so a racing reader may pin a
  // version not yet in the map (it skips those) — but a version that
  // IS in the map has immutable expected bytes.
  std::mutex mu;
  std::map<uint64_t, std::string> expected;
  {
    auto snap = (*db)->PinSnapshot();
    ASSERT_NE(snap, nullptr);
    std::lock_guard<std::mutex> lock(mu);
    expected[snap->version()] = SerializeSnapshot(*snap);
  }

  std::atomic<bool> writer_done{false};
  std::atomic<int> mismatches{0};
  std::atomic<long> verified{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!writer_done.load(std::memory_order_acquire)) {
        auto snap = (*db)->PinSnapshot();
        const std::string bytes = SerializeSnapshot(*snap);
        // Re-serializing the same pin must be bit-identical: nothing
        // mutates a published version in place.
        if (bytes != SerializeSnapshot(*snap)) {
          ++mismatches;
          continue;
        }
        std::string want;
        {
          std::lock_guard<std::mutex> lock(mu);
          auto it = expected.find(snap->version());
          if (it == expected.end()) continue;
          want = it->second;
        }
        if (bytes == want) {
          ++verified;
        } else {
          ++mismatches;
        }
      }
    });
  }

  {
    auto writer = sessions.NewSession();
    for (const std::string& stmt : writes) {
      auto out = writer->Execute(stmt);
      ASSERT_TRUE(out.ok()) << stmt << ": " << out.status().ToString();
      // Single writer: the pin right after Execute is exactly the
      // version that statement published.
      auto snap = (*db)->PinSnapshot();
      std::lock_guard<std::mutex> lock(mu);
      expected.emplace(snap->version(), SerializeSnapshot(*snap));
    }
  }
  writer_done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(verified.load(), 0);
  ASSERT_TRUE((*db)->VerifyIntegrity().ok());
}

// Regression: while session A holds the open transaction, A's second
// BEGIN is rejected by the engine, B's reads proceed, and B's mutations
// bounce with kUnavailable until A resolves the transaction.
TEST_F(ConcurrencyTest, SecondBeginRejectedWhileOtherSessionReads) {
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  SessionManager sessions(db->get());
  auto a = sessions.NewSession();
  auto b = sessions.NewSession();

  ASSERT_TRUE(a->Execute("CREATE RELATION r (x STRING, y STRING)").ok());
  ASSERT_TRUE(a->Execute("INSERT INTO r VALUES (u, v)").ok());
  ASSERT_TRUE(a->Execute("BEGIN").ok());
  ASSERT_TRUE(a->Execute("INSERT INTO r VALUES (w, z)").ok());

  // A second BEGIN on the owning session: engine-level rejection.
  auto second = a->Execute("BEGIN");
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);

  // Another session's read proceeds while the transaction is open.
  // Reads are read-committed against the pinned snapshot: B sees only
  // the last commit boundary, never A's uncommitted (w, z).
  std::thread reader([&b] {
    auto out = b->Execute("SELECT COUNT(*) FROM r");
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(*out, "1");
  });
  reader.join();

  // A itself still sees its own uncommitted insert (read-your-own-
  // writes goes to the live database, not a snapshot).
  auto own = a->Execute("SELECT COUNT(*) FROM r");
  ASSERT_TRUE(own.ok());
  EXPECT_EQ(*own, "2");

  // Another session's mutation is refused — retryable, not fatal.
  auto blocked = b->Execute("INSERT INTO r VALUES (p, q)");
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kUnavailable);

  ASSERT_TRUE(a->Execute("ROLLBACK").ok());
  // Slot released: B can mutate now.
  ASSERT_TRUE(b->Execute("INSERT INTO r VALUES (p, q)").ok());
  auto count = b->Execute("SELECT COUNT(*) FROM r");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, "2");  // (w, z) was rolled back; (p, q) landed.
}

// A session abandoned mid-transaction must not leak the transaction
// slot: its destructor rolls back.
TEST_F(ConcurrencyTest, AbandonedSessionRollsBackOnDestruction) {
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  SessionManager sessions(db->get());
  auto keeper = sessions.NewSession();
  ASSERT_TRUE(keeper->Execute("CREATE RELATION r (x STRING)").ok());

  {
    auto doomed = sessions.NewSession();
    ASSERT_TRUE(doomed->Execute("BEGIN").ok());
    ASSERT_TRUE(doomed->Execute("INSERT INTO r VALUES (gone)").ok());
    // doomed drops here without COMMIT.
  }

  EXPECT_FALSE((*db)->in_transaction());
  auto count = keeper->Execute("SELECT COUNT(*) FROM r");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, "0");
  // And the slot is actually free.
  ASSERT_TRUE(keeper->Execute("INSERT INTO r VALUES (kept)").ok());
}

}  // namespace
}  // namespace nf2
