// Coverage for smaller surfaces: statistics, logging, predicates'
// helpers, rendering edge cases, WAL record names, buffer-pool corner
// configurations.

#include <gtest/gtest.h>

#include <filesystem>

#include "algebra/predicate.h"
#include "core/format.h"
#include "core/nest.h"
#include "core/update.h"
#include "engine/statistics.h"
#include "storage/buffer_pool.h"
#include "storage/serde.h"
#include "storage/wal.h"
#include "tests/test_util.h"
#include "util/logging.h"

namespace nf2 {
namespace {

TEST(StatisticsTest, ComputeRelationStats) {
  FlatRelation flat = MakeStringRelation(
      {"A", "B"},
      {{"a1", "b1"}, {"a2", "b1"}, {"a3", "b1"}, {"a4", "b1"}});
  NfrRelation nested = CanonicalForm(flat, {0, 1});
  RelationStats stats = ComputeRelationStats(nested);
  EXPECT_EQ(stats.nfr_tuples, 1u);
  EXPECT_EQ(stats.flat_tuples, 4u);
  EXPECT_DOUBLE_EQ(stats.TupleReduction(), 4.0);
  EXPECT_GT(stats.nfr_bytes, 0u);
  EXPECT_GT(stats.flat_bytes, stats.nfr_bytes);
  EXPECT_GT(stats.ByteReduction(), 1.0);
  stats.name = "r";
  std::string text = stats.ToString();
  EXPECT_NE(text.find("r: 1 NFR tuples"), std::string::npos);
}

// The analytic flat_bytes (derived from component cardinalities,
// Theorem 1) must equal what actually serializing R* would produce —
// pinned here against the materializing computation it replaced.
TEST(StatisticsTest, AnalyticFlatBytesMatchesMaterialized) {
  Rng rng(11);
  for (int round = 0; round < 5; ++round) {
    FlatRelation flat = RandomFlatRelation(&rng, 3, 3, 20);
    NfrRelation nested = CanonicalForm(flat, {1, 2, 0});
    RelationStats stats = ComputeRelationStats(nested);

    BufferWriter materialized;
    EncodeSchema(nested.schema(), &materialized);
    const FlatRelation expanded = nested.Expand();
    for (const FlatTuple& t : expanded.tuples()) {
      EncodeFlatTuple(t, &materialized);
    }
    EXPECT_EQ(stats.flat_bytes, materialized.size());
    EXPECT_EQ(stats.flat_tuples, nested.ExpandedSize());
  }
}

TEST(StatisticsTest, EmptyRelation) {
  NfrRelation empty(Schema::OfStrings({"A"}));
  RelationStats stats = ComputeRelationStats(empty);
  EXPECT_EQ(stats.nfr_tuples, 0u);
  EXPECT_DOUBLE_EQ(stats.TupleReduction(), 1.0);
}

TEST(UpdateStatsTest, SubtractionAndReset) {
  UpdateStats a;
  a.compositions = 10;
  a.decompositions = 6;
  a.recons_calls = 20;
  a.candidate_scans = 100;
  UpdateStats b;
  b.compositions = 4;
  b.decompositions = 2;
  b.recons_calls = 5;
  b.candidate_scans = 40;
  UpdateStats d = a - b;
  EXPECT_EQ(d.compositions, 6u);
  EXPECT_EQ(d.decompositions, 4u);
  EXPECT_EQ(d.recons_calls, 15u);
  EXPECT_EQ(d.candidate_scans, 60u);
  d.Reset();
  EXPECT_EQ(d.compositions, 0u);
}

TEST(FormatTest, EmptyRelationRenders) {
  NfrRelation empty(Schema::OfStrings({"OnlyColumn"}));
  std::string table = RenderTable(empty, "empty");
  EXPECT_NE(table.find("OnlyColumn"), std::string::npos);
  EXPECT_NE(table.find("empty"), std::string::npos);
}

TEST(FormatTest, WideValuesAlign) {
  NfrRelation rel(Schema::OfStrings({"A", "B"}));
  rel.Add(NfrTuple{ValueSet(V("a-very-long-value")), ValueSet(V("b"))});
  rel.Add(NfrTuple{ValueSet(V("x")), ValueSet(V("y"))});
  std::string table = RenderTable(rel);
  // All data lines have equal width.
  std::vector<std::string> lines = Split(table, '\n');
  size_t width = 0;
  for (const std::string& line : lines) {
    if (line.empty()) continue;
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << table;
  }
}

TEST(WalTest, OpTypeNames) {
  EXPECT_STREQ(WalOpTypeToString(WalOpType::kInsert), "INSERT");
  EXPECT_STREQ(WalOpTypeToString(WalOpType::kDelete), "DELETE");
  EXPECT_STREQ(WalOpTypeToString(WalOpType::kCreateRelation), "CREATE");
  EXPECT_STREQ(WalOpTypeToString(WalOpType::kDropRelation), "DROP");
  EXPECT_STREQ(WalOpTypeToString(WalOpType::kCheckpoint), "CHECKPOINT");
  EXPECT_STREQ(WalOpTypeToString(WalOpType::kTxnBegin), "TXN_BEGIN");
  EXPECT_STREQ(WalOpTypeToString(WalOpType::kTxnCommit), "TXN_COMMIT");
  EXPECT_STREQ(WalOpTypeToString(WalOpType::kTxnAbort), "TXN_ABORT");
}

TEST(BufferPoolTest, CapacityOneStillWorks) {
  auto dir = std::filesystem::temp_directory_path() / "nf2_misc_pool";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  auto hf = HeapFile::Create((dir / "t.nf2").string());
  ASSERT_TRUE(hf.ok());
  BufferPool pool(hf->get(), 1);
  for (int i = 0; i < 3; ++i) {
    auto allocated = pool.Allocate();
    ASSERT_TRUE(allocated.ok());
    allocated->second->Insert(StrCat("page ", allocated->first));
    pool.MarkDirty(allocated->first);
  }
  EXPECT_EQ(pool.resident_pages(), 1u);
  for (PageId id = 0; id < 3; ++id) {
    auto page = pool.Fetch(id);
    ASSERT_TRUE(page.ok());
    EXPECT_EQ(*(*page)->Read(0), StrCat("page ", id));
  }
  std::filesystem::remove_all(dir);
}

TEST(LoggingTest, ThresholdControlsEmission) {
  LogLevel old_threshold = GetLogThreshold();
  SetLogThreshold(LogLevel::kError);
  // These must not crash; visual output is suppressed below threshold.
  NF2_LOG(Debug) << "hidden";
  NF2_LOG(Info) << "hidden";
  NF2_LOG(Warning) << "hidden";
  SetLogThreshold(old_threshold);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(NF2_CHECK(1 == 2) << "boom", "Check failed: 1 == 2 boom");
}

TEST(PredicateTest, MaxAttr) {
  Predicate p = Predicate::And(Predicate::Eq(1, V("x")),
                               Predicate::Not(Predicate::Lt(4, V("y"))));
  EXPECT_EQ(p.MaxAttr(), 4u);
  EXPECT_EQ(Predicate::True().MaxAttr(), 0u);
}

TEST(CanonicalRelationTest, SearchModeAccessor) {
  CanonicalRelation scan(Schema::OfStrings({"A"}), {0},
                         CanonicalRelation::SearchMode::kScan);
  EXPECT_EQ(scan.search_mode(), CanonicalRelation::SearchMode::kScan);
  CanonicalRelation indexed(Schema::OfStrings({"A"}), {0});
  EXPECT_EQ(indexed.search_mode(),
            CanonicalRelation::SearchMode::kIndexed);
}

TEST(CanonicalRelationTest, ContainsRejectsWrongDegree) {
  CanonicalRelation rel(Schema::OfStrings({"A", "B"}), {0, 1});
  EXPECT_FALSE(rel.Contains(FlatTuple{V("x")}));
  EXPECT_FALSE(rel.Contains(FlatTuple{V("x"), V("y"), V("z")}));
}

TEST(RecordIdTest, ToStringAndValidity) {
  RecordId rid{3, 7};
  EXPECT_EQ(rid.ToString(), "(page=3, slot=7)");
  EXPECT_TRUE(rid.valid());
  EXPECT_FALSE(RecordId{}.valid());
}

}  // namespace
}  // namespace nf2
