#include <gtest/gtest.h>

#include <filesystem>

#include "engine/database.h"
#include "tests/test_util.h"

namespace nf2 {
namespace {

class TransactionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("nf2_txn_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static Status CreateAccounts(Database* db) {
    return db->CreateRelation("acct",
                              Schema::OfStrings({"Owner", "Asset"}),
                              {1, 0});
  }

  static FlatTuple Row(const char* owner, const char* asset) {
    return FlatTuple{V(owner), V(asset)};
  }

  std::string dir_;
};

TEST_F(TransactionTest, CommitAppliesAtomically) {
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(CreateAccounts(db->get()).ok());
  ASSERT_TRUE((*db)->Insert("acct", Row("ada", "gold")).ok());

  ASSERT_TRUE((*db)->Begin().ok());
  EXPECT_TRUE((*db)->in_transaction());
  // A transfer: gold moves from ada to bob.
  ASSERT_TRUE((*db)->Delete("acct", Row("ada", "gold")).ok());
  ASSERT_TRUE((*db)->Insert("acct", Row("bob", "gold")).ok());
  ASSERT_TRUE((*db)->Commit().ok());
  EXPECT_FALSE((*db)->in_transaction());

  Result<FlatRelation> scan = (*db)->Scan("acct");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), 1u);
  EXPECT_TRUE(scan->Contains(Row("bob", "gold")));
}

TEST_F(TransactionTest, RollbackRestoresPriorState) {
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(CreateAccounts(db->get()).ok());
  ASSERT_TRUE((*db)->Insert("acct", Row("ada", "gold")).ok());
  ASSERT_TRUE((*db)->Insert("acct", Row("ada", "silver")).ok());
  FlatRelation before = *(*db)->Scan("acct");

  ASSERT_TRUE((*db)->Begin().ok());
  ASSERT_TRUE((*db)->Delete("acct", Row("ada", "gold")).ok());
  ASSERT_TRUE((*db)->Insert("acct", Row("eve", "gold")).ok());
  ASSERT_TRUE((*db)->Insert("acct", Row("eve", "bronze")).ok());
  ASSERT_TRUE((*db)->Rollback().ok());
  EXPECT_FALSE((*db)->in_transaction());

  EXPECT_EQ(*(*db)->Scan("acct"), before);
  // And the NFR is still canonical.
  Result<const NfrRelation*> rel = (*db)->Relation("acct");
  Result<const RelationInfo*> info = (*db)->Info("acct");
  ASSERT_TRUE(rel.ok() && info.ok());
  EXPECT_TRUE((*rel)->EqualsAsSet(
      CanonicalForm((*rel)->Expand(), (*info)->nest_order)));
}

TEST_F(TransactionTest, NoNestingAndNoStrayCommit) {
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(CreateAccounts(db->get()).ok());
  EXPECT_EQ((*db)->Commit().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ((*db)->Rollback().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE((*db)->Begin().ok());
  EXPECT_EQ((*db)->Begin().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE((*db)->Rollback().ok());
}

TEST_F(TransactionTest, DdlAndCheckpointRejectedInsideTxn) {
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(CreateAccounts(db->get()).ok());
  ASSERT_TRUE((*db)->Begin().ok());
  EXPECT_EQ((*db)
                ->CreateRelation("other", Schema::OfStrings({"A"}), {0})
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*db)->DropRelation("acct").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*db)->Checkpoint().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE((*db)->Commit().ok());
  EXPECT_TRUE((*db)->Checkpoint().ok());
}

TEST_F(TransactionTest, CrashCutTransactionDiscardedOnRecovery) {
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(CreateAccounts(db->get()).ok());
    ASSERT_TRUE((*db)->Insert("acct", Row("ada", "gold")).ok());
    ASSERT_TRUE((*db)->Begin().ok());
    ASSERT_TRUE((*db)->Delete("acct", Row("ada", "gold")).ok());
    ASSERT_TRUE((*db)->Insert("acct", Row("mallory", "gold")).ok());
    // Crash before commit: leak the handle so no rollback/checkpoint
    // runs — only the WAL survives.
    (void)(*db).release();
  }
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok()) << db.status();
  Result<FlatRelation> scan = (*db)->Scan("acct");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), 1u);
  EXPECT_TRUE(scan->Contains(Row("ada", "gold")));
  EXPECT_FALSE(scan->Contains(Row("mallory", "gold")));
}

TEST_F(TransactionTest, CommittedTransactionSurvivesCrash) {
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(CreateAccounts(db->get()).ok());
    ASSERT_TRUE((*db)->Begin().ok());
    ASSERT_TRUE((*db)->Insert("acct", Row("ada", "gold")).ok());
    ASSERT_TRUE((*db)->Insert("acct", Row("bob", "gold")).ok());
    ASSERT_TRUE((*db)->Commit().ok());
    (void)(*db).release();  // Crash after commit.
  }
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok()) << db.status();
  Result<FlatRelation> scan = (*db)->Scan("acct");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), 2u);
}

TEST_F(TransactionTest, AbortedTransactionDiscardedOnRecovery) {
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(CreateAccounts(db->get()).ok());
    ASSERT_TRUE((*db)->Insert("acct", Row("ada", "gold")).ok());
    ASSERT_TRUE((*db)->Begin().ok());
    ASSERT_TRUE((*db)->Insert("acct", Row("eve", "gold")).ok());
    ASSERT_TRUE((*db)->Rollback().ok());
    (void)(*db).release();  // Crash after rollback, before checkpoint.
  }
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok()) << db.status();
  Result<FlatRelation> scan = (*db)->Scan("acct");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), 1u);
  EXPECT_FALSE(scan->Contains(Row("eve", "gold")));
}

TEST_F(TransactionTest, DestructorRollsBackOpenTransaction) {
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(CreateAccounts(db->get()).ok());
    ASSERT_TRUE((*db)->Insert("acct", Row("ada", "gold")).ok());
    ASSERT_TRUE((*db)->Begin().ok());
    ASSERT_TRUE((*db)->Insert("acct", Row("eve", "gold")).ok());
    // Clean shutdown with an open transaction: implicit rollback.
  }
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok()) << db.status();
  Result<FlatRelation> scan = (*db)->Scan("acct");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), 1u);
}

TEST_F(TransactionTest, RandomizedTransactionsMatchReference) {
  Rng rng(77);
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  Schema schema = Schema::OfStrings({"A", "B"});
  ASSERT_TRUE((*db)->CreateRelation("r", schema, {1, 0}).ok());
  FlatRelation reference(schema);
  for (int txn = 0; txn < 20; ++txn) {
    FlatRelation snapshot = reference;
    ASSERT_TRUE((*db)->Begin().ok());
    for (int op = 0; op < 6; ++op) {
      FlatTuple t{V(StrCat("a", rng.NextBelow(4)).c_str()),
                  V(StrCat("b", rng.NextBelow(4)).c_str())};
      if (rng.NextBool(0.6)) {
        if ((*db)->Insert("r", t).ok()) reference.Insert(t);
      } else {
        if ((*db)->Delete("r", t).ok()) reference.Erase(t);
      }
    }
    if (rng.NextBool(0.5)) {
      ASSERT_TRUE((*db)->Commit().ok());
    } else {
      ASSERT_TRUE((*db)->Rollback().ok());
      reference = snapshot;
    }
    ASSERT_EQ(*(*db)->Scan("r"), reference) << "txn " << txn;
  }
}

TEST_F(TransactionTest, FdEnforcementRejectsViolation) {
  Database::Options options;
  options.enforce_fds = true;
  auto db = Database::Open(dir_, options);
  ASSERT_TRUE(db.ok());
  // Owner -> Asset: each owner holds exactly one asset kind.
  ASSERT_TRUE((*db)
                  ->CreateRelation("holdings",
                                   Schema::OfStrings({"Owner", "Asset"}),
                                   {}, {Fd{AttrSet{0}, AttrSet{1}}})
                  .ok());
  ASSERT_TRUE((*db)->Insert("holdings", Row("ada", "gold")).ok());
  Status violation = (*db)->Insert("holdings", Row("ada", "silver"));
  EXPECT_EQ(violation.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(violation.message().find("violates FD"), std::string::npos);
  // A second owner with the same asset is fine.
  EXPECT_TRUE((*db)->Insert("holdings", Row("bob", "gold")).ok());
  // With enforcement off the same insert passes.
  Database::Options lax;
  lax.enforce_fds = false;
  std::string dir2 = dir_ + "_lax";
  std::filesystem::remove_all(dir2);
  auto db2 = Database::Open(dir2, lax);
  ASSERT_TRUE(db2.ok());
  ASSERT_TRUE((*db2)
                  ->CreateRelation("holdings",
                                   Schema::OfStrings({"Owner", "Asset"}),
                                   {}, {Fd{AttrSet{0}, AttrSet{1}}})
                  .ok());
  ASSERT_TRUE((*db2)->Insert("holdings", Row("ada", "gold")).ok());
  EXPECT_TRUE((*db2)->Insert("holdings", Row("ada", "silver")).ok());
  std::filesystem::remove_all(dir2);
}

}  // namespace
}  // namespace nf2
