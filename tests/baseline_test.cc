#include <gtest/gtest.h>

#include "baseline/flat_engine.h"
#include "core/update.h"
#include "tests/test_util.h"

namespace nf2 {
namespace {

Schema Scc() { return Schema::OfStrings({"Student", "Course", "Club"}); }

FlatBaseline MakeSingle() {
  return FlatBaseline(Scc(), FdSet(3), MvdSet(3),
                      FlatBaseline::Mode::kSingleTable);
}

FlatBaseline MakeDecomposed() {
  MvdSet mvds(3);
  mvds.Add(AttrSet{0}, AttrSet{1});  // Student ->-> Course | Club.
  return FlatBaseline(Scc(), FdSet(3), mvds,
                      FlatBaseline::Mode::kDecomposed4NF);
}

FlatTuple Scb(const char* s, const char* c, const char* b) {
  return FlatTuple{V(s), V(c), V(b)};
}

TEST(FlatBaselineTest, SingleTableBasics) {
  FlatBaseline engine = MakeSingle();
  ASSERT_TRUE(engine.Insert(Scb("s1", "c1", "b1")).ok());
  ASSERT_TRUE(engine.Insert(Scb("s1", "c2", "b1")).ok());
  EXPECT_EQ(engine.Insert(Scb("s1", "c1", "b1")).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(engine.Contains(Scb("s1", "c2", "b1")));
  EXPECT_EQ(engine.TotalTuples(), 2u);
  ASSERT_TRUE(engine.Delete(Scb("s1", "c1", "b1")).ok());
  EXPECT_EQ(engine.Delete(Scb("s1", "c1", "b1")).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.Scan().size(), 1u);
}

TEST(FlatBaselineTest, DecomposedFragmentsFollowMvd) {
  FlatBaseline engine = MakeDecomposed();
  ASSERT_EQ(engine.fragments().size(), 2u);
  // {Student, Course} and {Student, Club}.
  EXPECT_EQ(engine.fragments()[0].positions,
            (std::vector<size_t>{0, 1}));
  EXPECT_EQ(engine.fragments()[1].positions,
            (std::vector<size_t>{0, 2}));
}

TEST(FlatBaselineTest, DecomposedInsertAndScanAgreeWithSingle) {
  FlatBaseline decomposed = MakeDecomposed();
  FlatBaseline single = MakeSingle();
  // Data satisfying the MVD (the decomposition is only lossless then).
  for (const char* s : {"s1", "s2"}) {
    for (const char* c : {"c1", "c2", "c3"}) {
      const char* b = (s[1] == '1') ? "b1" : "b2";
      ASSERT_TRUE(decomposed.Insert(Scb(s, c, b)).ok());
      ASSERT_TRUE(single.Insert(Scb(s, c, b)).ok());
    }
  }
  EXPECT_EQ(decomposed.Scan(), single.Scan());
  // Fragment storage is smaller: 2*3 + 2 = 8 rows vs 6... here the
  // decomposition stores 6+2=8; compression shows with more clubs per
  // student (the point is the *join* cost, checked in benches).
  EXPECT_EQ(decomposed.TotalTuples(), 8u);
}

TEST(FlatBaselineTest, DecomposedQueryMatchesSingle) {
  FlatBaseline decomposed = MakeDecomposed();
  FlatBaseline single = MakeSingle();
  for (const char* s : {"s1", "s2", "s3"}) {
    for (const char* c : {"c1", "c2"}) {
      ASSERT_TRUE(decomposed.Insert(Scb(s, c, "b1")).ok());
      ASSERT_TRUE(single.Insert(Scb(s, c, "b1")).ok());
    }
  }
  Predicate pred = Predicate::Eq(0, V("s2"));
  EXPECT_EQ(decomposed.Query(pred), single.Query(pred));
}

TEST(FlatBaselineTest, DecomposedDeleteSurfacesTheAnomaly) {
  // Removing (s1,c1,b1) while keeping (s1,c1,b2) and (s1,c2,b1) makes
  // the data violate the MVD the 4NF design assumed; the fragments
  // cannot represent the result, and the engine says so instead of
  // silently resurrecting the tuple. This is the §2 lesson ("we should
  // not assume some dependencies already exist") and why the NFR
  // engine keeps the relation whole.
  FlatBaseline engine = MakeDecomposed();
  for (const char* c : {"c1", "c2"}) {
    for (const char* b : {"b1", "b2"}) {
      Status s = engine.Insert(Scb("s1", c, b));
      // The join may have materialized the tuple already (insertion
      // anomaly, tested separately); both outcomes leave the same state.
      ASSERT_TRUE(s.ok() || s.code() == StatusCode::kAlreadyExists) << s;
    }
  }
  ASSERT_EQ(engine.Scan().size(), 4u);
  Status s = engine.Delete(Scb("s1", "c1", "b1"));
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  // State unchanged.
  EXPECT_EQ(engine.Scan().size(), 4u);
}

TEST(FlatBaselineTest, DecomposedGroupDeleteIsClean) {
  // Dropping ALL of a course's club combinations ("s1 stops taking
  // c1", the Fig. 2 scenario) keeps the MVD intact and succeeds.
  FlatBaseline engine = MakeDecomposed();
  for (const char* c : {"c1", "c2"}) {
    for (const char* b : {"b1", "b2"}) {
      Status s = engine.Insert(Scb("s1", c, b));
      ASSERT_TRUE(s.ok() || s.code() == StatusCode::kAlreadyExists) << s;
    }
  }
  Predicate drop_c1 = Predicate::And(Predicate::Eq(0, V("s1")),
                                     Predicate::Eq(1, V("c1")));
  Result<size_t> deleted = engine.DeleteWhere(drop_c1);
  ASSERT_TRUE(deleted.ok()) << deleted.status();
  EXPECT_EQ(*deleted, 2u);
  FlatRelation after = engine.Scan();
  EXPECT_EQ(after.size(), 2u);
  EXPECT_FALSE(after.Contains(Scb("s1", "c1", "b1")));
  EXPECT_FALSE(after.Contains(Scb("s1", "c1", "b2")));
}

TEST(FlatBaselineTest, DecomposedInsertionAnomaly) {
  // Inserting 3 of the 4 cross-product tuples materializes the 4th in
  // the join — the insertion anomaly of the 4NF design, surfaced as
  // AlreadyExists on the 4th insert.
  FlatBaseline engine = MakeDecomposed();
  ASSERT_TRUE(engine.Insert(Scb("s1", "c1", "b1")).ok());
  ASSERT_TRUE(engine.Insert(Scb("s1", "c1", "b2")).ok());
  ASSERT_TRUE(engine.Insert(Scb("s1", "c2", "b1")).ok());
  EXPECT_EQ(engine.Scan().size(), 4u);  // (s1,c2,b2) appeared for free.
  EXPECT_TRUE(engine.Contains(Scb("s1", "c2", "b2")));
  EXPECT_EQ(engine.Insert(Scb("s1", "c2", "b2")).code(),
            StatusCode::kAlreadyExists);
  // The single-table baseline does not do this.
  FlatBaseline single = MakeSingle();
  ASSERT_TRUE(single.Insert(Scb("s1", "c1", "b1")).ok());
  ASSERT_TRUE(single.Insert(Scb("s1", "c1", "b2")).ok());
  ASSERT_TRUE(single.Insert(Scb("s1", "c2", "b1")).ok());
  EXPECT_FALSE(single.Contains(Scb("s1", "c2", "b2")));
}

TEST(FlatBaselineTest, NfrHandlesTheAnomalousDeleteFine) {
  // The same delete the 4NF baseline must reject is routine for the
  // canonical NFR (§4.3).
  CanonicalRelation nfr(Scc(), {1, 2, 0});
  for (const char* c : {"c1", "c2"}) {
    ASSERT_TRUE(nfr.Insert(Scb("s1", c, "b1")).ok());
    ASSERT_TRUE(nfr.Insert(Scb("s1", c, "b2")).ok());
  }
  ASSERT_TRUE(nfr.Delete(Scb("s1", "c1", "b1")).ok());
  FlatRelation after = nfr.relation().Expand();
  EXPECT_EQ(after.size(), 3u);
  EXPECT_FALSE(after.Contains(Scb("s1", "c1", "b1")));
}

TEST(FlatBaselineTest, SingleTableDeleteHasNoAnomaly) {
  FlatBaseline engine = MakeSingle();
  for (const char* c : {"c1", "c2"}) {
    ASSERT_TRUE(engine.Insert(Scb("s1", c, "b1")).ok());
    ASSERT_TRUE(engine.Insert(Scb("s1", c, "b2")).ok());
  }
  ASSERT_TRUE(engine.Delete(Scb("s1", "c1", "b1")).ok());
  EXPECT_EQ(engine.Scan().size(), 3u);
  EXPECT_FALSE(engine.Scan().Contains(Scb("s1", "c1", "b1")));
}

TEST(FlatBaselineTest, NfrStoresFewerTuplesThanEitherBaseline) {
  // The §2 size claim on MVD-structured data.
  Schema schema = Scc();
  MvdSet mvds(3);
  mvds.Add(AttrSet{0}, AttrSet{1});
  FlatBaseline single(schema, FdSet(3), MvdSet(3),
                      FlatBaseline::Mode::kSingleTable);
  CanonicalRelation nfr(schema, {1, 2, 0});
  size_t students = 10, courses = 6, clubs = 2;
  for (size_t s = 0; s < students; ++s) {
    for (size_t c = 0; c < courses; ++c) {
      for (size_t b = 0; b < clubs; ++b) {
        FlatTuple t{V(StrCat("s", s).c_str()), V(StrCat("c", c).c_str()),
                    V(StrCat("b", b).c_str())};
        ASSERT_TRUE(single.Insert(t).ok());
        ASSERT_TRUE(nfr.Insert(t).ok());
      }
    }
  }
  EXPECT_EQ(single.TotalTuples(), students * courses * clubs);
  // All students share the same course/club sets -> very few NFR tuples.
  EXPECT_LE(nfr.size(), students);
  EXPECT_LT(nfr.size() * 10, single.TotalTuples());
}

TEST(FlatBaselineTest, BytesAccountingNonZero) {
  FlatBaseline engine = MakeSingle();
  size_t empty_bytes = engine.TotalBytes();
  ASSERT_TRUE(engine.Insert(Scb("s1", "c1", "b1")).ok());
  EXPECT_GT(engine.TotalBytes(), empty_bytes);
}

TEST(FlatBaselineTest, NoMvdMeansSingleFragment) {
  FlatBaseline engine(Scc(), FdSet(3), MvdSet(3),
                      FlatBaseline::Mode::kDecomposed4NF);
  ASSERT_EQ(engine.fragments().size(), 1u);
  EXPECT_EQ(engine.fragments()[0].positions,
            (std::vector<size_t>{0, 1, 2}));
}

TEST(FlatBaselineTest, KeyMvdDoesNotFragment) {
  FdSet fds(3);
  fds.Add(AttrSet{0}, AttrSet{1, 2});
  MvdSet mvds(3);
  mvds.Add(AttrSet{0}, AttrSet{1});
  FlatBaseline engine(Scc(), fds, mvds,
                      FlatBaseline::Mode::kDecomposed4NF);
  EXPECT_EQ(engine.fragments().size(), 1u);
}

}  // namespace
}  // namespace nf2
