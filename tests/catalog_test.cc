#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "catalog/catalog.h"

namespace nf2 {
namespace {

RelationInfo SampleInfo(const std::string& name = "students") {
  RelationInfo info;
  info.name = name;
  info.schema = Schema::OfStrings({"Student", "Course", "Club"});
  info.nest_order = {1, 2, 0};
  info.fds = {Fd{AttrSet{0}, AttrSet{2}}};
  info.mvds = {Mvd{AttrSet{0}, AttrSet{1}}};
  info.table_file = name + ".tbl";
  return info;
}

class CatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "nf2_catalog_test";
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

TEST_F(CatalogTest, AddGetRemove) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Add(SampleInfo()).ok());
  EXPECT_TRUE(catalog.Has("students"));
  Result<const RelationInfo*> got = catalog.Get("students");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->schema.degree(), 3u);
  EXPECT_EQ((*got)->nest_order, (Permutation{1, 2, 0}));
  ASSERT_TRUE(catalog.Remove("students").ok());
  EXPECT_FALSE(catalog.Has("students"));
  EXPECT_EQ(catalog.Get("students").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(catalog.Remove("students").code(), StatusCode::kNotFound);
}

TEST_F(CatalogTest, DuplicateAddRejected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Add(SampleInfo()).ok());
  EXPECT_EQ(catalog.Add(SampleInfo()).code(), StatusCode::kAlreadyExists);
}

TEST_F(CatalogTest, BadNestOrderRejected) {
  RelationInfo info = SampleInfo();
  info.nest_order = {0, 0, 1};
  Catalog catalog;
  EXPECT_EQ(catalog.Add(info).code(), StatusCode::kInvalidArgument);
}

TEST_F(CatalogTest, NamesSorted) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Add(SampleInfo("zeta")).ok());
  ASSERT_TRUE(catalog.Add(SampleInfo("alpha")).ok());
  EXPECT_EQ(catalog.Names(), (std::vector<std::string>{"alpha", "zeta"}));
}

TEST_F(CatalogTest, RelationInfoRoundTrip) {
  RelationInfo info = SampleInfo();
  BufferWriter w;
  EncodeRelationInfo(info, &w);
  BufferReader r(w.data());
  Result<RelationInfo> back = DecodeRelationInfo(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->name, info.name);
  EXPECT_EQ(back->schema, info.schema);
  EXPECT_EQ(back->nest_order, info.nest_order);
  ASSERT_EQ(back->fds.size(), 1u);
  EXPECT_EQ(back->fds[0], info.fds[0]);
  ASSERT_EQ(back->mvds.size(), 1u);
  EXPECT_EQ(back->mvds[0], info.mvds[0]);
  EXPECT_EQ(back->table_file, info.table_file);
}

TEST_F(CatalogTest, SaveAndLoad) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Add(SampleInfo("a")).ok());
  ASSERT_TRUE(catalog.Add(SampleInfo("b")).ok());
  ASSERT_TRUE(catalog.SaveToFile(Path("catalog.nf2")).ok());
  Result<Catalog> loaded = Catalog::LoadFromFile(Path("catalog.nf2"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_TRUE(loaded->Has("a"));
  EXPECT_TRUE(loaded->Has("b"));
  Result<const RelationInfo*> a = loaded->Get("a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)->fds.size(), 1u);
}

TEST_F(CatalogTest, LoadMissingFileIsNotFound) {
  EXPECT_EQ(Catalog::LoadFromFile(Path("nope.nf2")).status().code(),
            StatusCode::kNotFound);
}

TEST_F(CatalogTest, CorruptedFileDetected) {
  Catalog catalog;
  ASSERT_TRUE(catalog.Add(SampleInfo()).ok());
  ASSERT_TRUE(catalog.SaveToFile(Path("catalog.nf2")).ok());
  // Flip one byte in the middle.
  {
    std::fstream f(Path("catalog.nf2"),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(10);
    f.put('~');
  }
  Result<Catalog> loaded = Catalog::LoadFromFile(Path("catalog.nf2"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(CatalogTest, FdSetAndMvdSetAccessors) {
  RelationInfo info = SampleInfo();
  FdSet fds = info.fd_set();
  EXPECT_EQ(fds.degree(), 3u);
  EXPECT_EQ(fds.fds().size(), 1u);
  MvdSet mvds = info.mvd_set();
  EXPECT_EQ(mvds.mvds().size(), 1u);
}

}  // namespace
}  // namespace nf2
