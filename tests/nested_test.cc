#include <gtest/gtest.h>

#include "nested/nested_relation.h"
#include "tests/test_util.h"

namespace nf2 {
namespace {

FlatRelation ScFlat() {
  return MakeStringRelation({"Student", "Course"}, {{"s1", "c1"},
                                                    {"s1", "c2"},
                                                    {"s2", "c1"}});
}

TEST(NestedSchemaTest, FromFlatAndAccessors) {
  NestedSchema schema = NestedSchema::FromFlat(ScFlat().schema());
  EXPECT_EQ(schema.degree(), 2u);
  EXPECT_TRUE(schema.IsFlat());
  EXPECT_EQ(schema.IndexOf("Course"), 1u);
  EXPECT_EQ(schema.IndexOf("Zzz"), std::nullopt);
  EXPECT_EQ(schema.ToString(), "(Student STRING, Course STRING)");
}

TEST(NestedSchemaTest, RelationValuedAttribute) {
  auto sub = std::make_shared<const NestedSchema>(
      NestedSchema::FromFlat(Schema::OfStrings({"X"})));
  NestedSchema schema({NestedAttribute{"A", ValueType::kString, nullptr},
                       NestedAttribute{"Rs", ValueType::kNull, sub}});
  EXPECT_FALSE(schema.IsFlat());
  EXPECT_TRUE(schema.attribute(1).is_relation());
  EXPECT_EQ(schema.ToString(), "(A STRING, Rs (X STRING))");
}

TEST(NestedSchemaDeathTest, DuplicateNames) {
  EXPECT_DEATH(NestedSchema({NestedAttribute{"A", ValueType::kString, {}},
                             NestedAttribute{"A", ValueType::kInt, {}}}),
               "Duplicate");
}

TEST(NestedRelationTest, FromFlatRoundTrip) {
  FlatRelation flat = ScFlat();
  NestedRelation nested = NestedRelation::FromFlat(flat);
  EXPECT_EQ(nested.size(), 3u);
  Result<FlatRelation> back = nested.ToFlat();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, flat);
}

TEST(NestedRelationTest, InsertDedups) {
  NestedRelation rel(NestedSchema::FromFlat(Schema::OfStrings({"A"})));
  EXPECT_TRUE(rel.Insert(NestedTuple({NestedValue(V("x"))})));
  EXPECT_FALSE(rel.Insert(NestedTuple({NestedValue(V("x"))})));
  EXPECT_EQ(rel.size(), 1u);
}

TEST(NestAttrsTest, GroupsIntoSubrelations) {
  // ν_Course(SC): one tuple per student with a courses subrelation —
  // the [7] operation the paper's composition specializes.
  NestedRelation sc = NestedRelation::FromFlat(ScFlat());
  Result<NestedRelation> nested = NestAttrs(sc, {"Course"}, "Courses");
  ASSERT_TRUE(nested.ok()) << nested.status();
  EXPECT_EQ(nested->size(), 2u);
  EXPECT_FALSE(nested->schema().IsFlat());
  // s1's subrelation has two tuples; s2's one.
  for (const NestedTuple& t : nested->tuples()) {
    const std::string student = t.at(0).atom().AsString();
    const NestedRelation& courses = t.at(1).relation();
    EXPECT_EQ(courses.size(), student == "s1" ? 2u : 1u);
  }
}

TEST(NestAttrsTest, SubrelationValuesCompareAsSets) {
  // Two students with the same course set produce EQUAL subrelation
  // values — the property the paper's canonical forms exploit.
  FlatRelation flat = MakeStringRelation(
      {"Student", "Course"},
      {{"s1", "c1"}, {"s1", "c2"}, {"s2", "c1"}, {"s2", "c2"}});
  Result<NestedRelation> nested =
      NestAttrs(NestedRelation::FromFlat(flat), {"Course"}, "Courses");
  ASSERT_TRUE(nested.ok());
  ASSERT_EQ(nested->size(), 2u);
  EXPECT_EQ(nested->tuple(0).at(1), nested->tuple(1).at(1));
  // Re-nesting on the subrelation attribute groups the two students.
  Result<NestedRelation> twice =
      NestAttrs(*nested, {"Student"}, "Students");
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(twice->size(), 1u);  // One (course-set, student-set) pair.
}

TEST(NestAttrsTest, Errors) {
  NestedRelation sc = NestedRelation::FromFlat(ScFlat());
  EXPECT_FALSE(NestAttrs(sc, {}, "X").ok());
  EXPECT_FALSE(NestAttrs(sc, {"Nope"}, "X").ok());
  EXPECT_FALSE(NestAttrs(sc, {"Student", "Course"}, "X").ok());
  EXPECT_FALSE(NestAttrs(sc, {"Course"}, "Student").ok());
  // Reusing the nested attribute's own name is fine.
  EXPECT_TRUE(NestAttrs(sc, {"Course"}, "Course").ok());
}

TEST(UnnestAttrTest, InvertsNest) {
  // μ(ν(R)) = R — always, for any R (the direction that holds
  // unconditionally in [7]).
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    FlatRelation flat = RandomFlatRelation(&rng, 3, 3, 12);
    NestedRelation lifted = NestedRelation::FromFlat(flat);
    Result<NestedRelation> nested = NestAttrs(lifted, {"E2"}, "Sub");
    ASSERT_TRUE(nested.ok());
    Result<NestedRelation> back = UnnestAttr(*nested, "Sub");
    ASSERT_TRUE(back.ok());
    // Column order changed (E2 moved to the end); compare as flat sets
    // after projecting back.
    Result<FlatRelation> back_flat = back->ToFlat();
    ASSERT_TRUE(back_flat.ok());
    EXPECT_EQ(back_flat->size(), flat.size());
    for (const FlatTuple& t : flat.tuples()) {
      FlatTuple reordered{t.at(0), t.at(2), t.at(1)};
      EXPECT_TRUE(back_flat->Contains(reordered));
    }
  }
}

TEST(UnnestAttrTest, EmptySubrelationsVanish) {
  // Standard μ semantics: a tuple with an empty subrelation produces
  // no output tuples (information loss — why ν∘μ is not always id).
  auto sub = std::make_shared<const NestedSchema>(
      NestedSchema::FromFlat(Schema::OfStrings({"X"})));
  NestedSchema schema({NestedAttribute{"A", ValueType::kString, nullptr},
                       NestedAttribute{"Rs", ValueType::kNull, sub}});
  NestedRelation rel(schema);
  rel.Insert(NestedTuple(
      {NestedValue(V("a1")), NestedValue(NestedRelation(*sub))}));
  NestedRelation full_sub(*sub);
  full_sub.Insert(NestedTuple({NestedValue(V("x1"))}));
  rel.Insert(
      NestedTuple({NestedValue(V("a2")), NestedValue(full_sub)}));
  Result<NestedRelation> unnested = UnnestAttr(rel, "Rs");
  ASSERT_TRUE(unnested.ok());
  EXPECT_EQ(unnested->size(), 1u);  // a1's empty group disappeared.
  EXPECT_EQ(unnested->tuple(0).at(0).atom(), V("a2"));
}

TEST(UnnestAttrTest, Errors) {
  NestedRelation sc = NestedRelation::FromFlat(ScFlat());
  EXPECT_FALSE(UnnestAttr(sc, "Student").ok());  // Atomic.
  EXPECT_FALSE(UnnestAttr(sc, "Nope").ok());
}

TEST(NestedRelationTest, DeepNesting) {
  // Two levels: departments -> students -> courses.
  FlatRelation flat = MakeStringRelation(
      {"Dept", "Student", "Course"},
      {{"d1", "s1", "c1"}, {"d1", "s1", "c2"}, {"d1", "s2", "c1"},
       {"d2", "s3", "c9"}});
  NestedRelation lifted = NestedRelation::FromFlat(flat);
  Result<NestedRelation> by_course =
      NestAttrs(lifted, {"Course"}, "Courses");
  ASSERT_TRUE(by_course.ok());
  Result<NestedRelation> by_student =
      NestAttrs(*by_course, {"Student", "Courses"}, "Students");
  ASSERT_TRUE(by_student.ok());
  EXPECT_EQ(by_student->size(), 2u);  // One tuple per department.
  // Unnest both levels and verify we recover the data (modulo column
  // order).
  Result<NestedRelation> level1 = UnnestAttr(*by_student, "Students");
  ASSERT_TRUE(level1.ok());
  Result<NestedRelation> level0 = UnnestAttr(*level1, "Courses");
  ASSERT_TRUE(level0.ok());
  Result<FlatRelation> back = level0->ToFlat();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), flat.size());
}

TEST(NestedRelationTest, RenderingsAreStable) {
  NestedRelation sc = NestedRelation::FromFlat(ScFlat());
  Result<NestedRelation> nested = NestAttrs(sc, {"Course"}, "Courses");
  ASSERT_TRUE(nested.ok());
  std::string text = nested->ToString();
  EXPECT_NE(text.find("Courses"), std::string::npos);
  EXPECT_NE(text.find("{<c1>, <c2>}"), std::string::npos);
  EXPECT_EQ(nested->ToString(), nested->ToString());
}

TEST(NestedValueTest, OrderingAndEquality) {
  NestedValue a(V("a"));
  NestedValue b(V("b"));
  EXPECT_LT(a, b);
  EXPECT_EQ(a, NestedValue(V("a")));
  NestedRelation r(NestedSchema::FromFlat(Schema::OfStrings({"X"})));
  NestedValue rel_value{r};
  EXPECT_NE(a, rel_value);
  EXPECT_LT(a, rel_value);  // Atoms before relations.
}

}  // namespace
}  // namespace nf2
