#include <gtest/gtest.h>

#include "algebra/operators.h"
#include "dependency/normalize.h"
#include "tests/test_util.h"

namespace nf2 {
namespace {

TEST(Synthesize3NFTest, TextbookExample) {
  // R(A,B,C,D): A->B, A->C, C->D. Cover groups: A->{B,C}, C->{D}.
  FdSet fds(4);
  fds.Add(AttrSet{0}, AttrSet{1});
  fds.Add(AttrSet{0}, AttrSet{2});
  fds.Add(AttrSet{2}, AttrSet{3});
  std::vector<SubScheme> schemes = Synthesize3NF(fds);
  ASSERT_EQ(schemes.size(), 2u);
  // One scheme {A,B,C}, one {C,D}; key A is inside the first.
  std::vector<AttrSet> attr_sets;
  for (const SubScheme& s : schemes) attr_sets.push_back(s.attrs);
  std::sort(attr_sets.begin(), attr_sets.end());
  EXPECT_EQ(attr_sets[0], (AttrSet{0, 1, 2}));
  EXPECT_EQ(attr_sets[1], (AttrSet{2, 3}));
}

TEST(Synthesize3NFTest, AddsKeySchemeWhenMissing) {
  // R(A,B,C): A->B only. Key is {A,C}; no FD group contains it, so a
  // key scheme must be appended.
  FdSet fds(3);
  fds.Add(AttrSet{0}, AttrSet{1});
  std::vector<SubScheme> schemes = Synthesize3NF(fds);
  ASSERT_EQ(schemes.size(), 2u);
  bool has_key_scheme = false;
  for (const SubScheme& s : schemes) {
    if ((AttrSet{0, 2}).IsSubsetOf(s.attrs)) has_key_scheme = true;
  }
  EXPECT_TRUE(has_key_scheme);
}

TEST(Synthesize3NFTest, MergesSameLhsGroups) {
  FdSet fds(3);
  fds.Add(AttrSet{0}, AttrSet{1});
  fds.Add(AttrSet{0}, AttrSet{2});
  std::vector<SubScheme> schemes = Synthesize3NF(fds);
  ASSERT_EQ(schemes.size(), 1u);
  EXPECT_EQ(schemes[0].attrs, (AttrSet{0, 1, 2}));
}

TEST(BcnfTest, Detection) {
  FdSet good(3);
  good.Add(AttrSet{0}, AttrSet{1, 2});
  EXPECT_TRUE(IsBcnf(good));
  FdSet bad(3);
  bad.Add(AttrSet{0}, AttrSet{1, 2});
  bad.Add(AttrSet{1}, AttrSet{2});  // B is not a superkey.
  EXPECT_FALSE(IsBcnf(bad));
}

TEST(FourNFTest, MvdWithNonKeyLhsViolates) {
  // Student ->-> Course with Student not a key: not 4NF.
  FdSet fds(3);
  MvdSet mvds(3);
  mvds.Add(AttrSet{0}, AttrSet{1});
  EXPECT_FALSE(Is4NF(fds, mvds));
  // If Student were a key it would be fine.
  FdSet key_fds(3);
  key_fds.Add(AttrSet{0}, AttrSet{1, 2});
  EXPECT_TRUE(Is4NF(key_fds, mvds));
}

TEST(FourNFTest, TrivialMvdsDoNotViolate) {
  FdSet fds(3);
  MvdSet mvds(3);
  mvds.Add(AttrSet{0}, AttrSet{1, 2});  // X∪Y = U: trivial.
  EXPECT_TRUE(Is4NF(fds, mvds));
}

TEST(Decompose4NFTest, SplitsR1IntoTwoProjections) {
  FlatRelation r1 = MakeStringRelation(
      {"Student", "Course", "Club"},
      {{"s1", "c1", "b1"}, {"s1", "c2", "b1"},
       {"s2", "c1", "b2"}, {"s2", "c2", "b2"}});
  FdSet fds(3);
  MvdSet mvds(3);
  mvds.Add(AttrSet{0}, AttrSet{1});
  std::vector<DecomposedRelation> parts = Decompose4NF(r1, fds, mvds);
  ASSERT_EQ(parts.size(), 2u);
  // Lossless: joining the parts recovers R1.
  FlatRelation joined = NaturalJoin(parts[0].relation, parts[1].relation);
  // Column order may differ; compare projected back to original order.
  ASSERT_EQ(joined.degree(), 3u);
  Result<FlatRelation> reordered = ProjectByName(
      joined, {"Student", "Course", "Club"});
  ASSERT_TRUE(reordered.ok());
  EXPECT_EQ(*reordered, r1);
}

TEST(Decompose4NFTest, NoViolationKeepsRelationWhole) {
  FlatRelation rel = MakeStringRelation({"A", "B"}, {{"a1", "b1"}});
  FdSet fds(2);
  MvdSet mvds(2);
  std::vector<DecomposedRelation> parts = Decompose4NF(rel, fds, mvds);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].relation, rel);
}

TEST(Decompose4NFTest, KeyLhsMvdDoesNotSplit) {
  FlatRelation rel = MakeStringRelation({"A", "B", "C"},
                                        {{"a1", "b1", "c1"}});
  FdSet fds(3);
  fds.Add(AttrSet{0}, AttrSet{1, 2});
  MvdSet mvds(3);
  mvds.Add(AttrSet{0}, AttrSet{1});
  EXPECT_EQ(Decompose4NF(rel, fds, mvds).size(), 1u);
}

TEST(SubSchemeTest, ToString) {
  Schema schema = Schema::OfStrings({"A", "B", "C"});
  SubScheme s{AttrSet{0, 1}, {Fd{AttrSet{0}, AttrSet{1}}}};
  EXPECT_EQ(s.ToString(schema), "{A,B} with {A}->{B}");
}

}  // namespace
}  // namespace nf2
