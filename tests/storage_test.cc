#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/nest.h"
#include "storage/buffer_pool.h"
#include "storage/checkpoint.h"
#include "storage/fault_injection_env.h"
#include "storage/heap_file.h"
#include "storage/page.h"
#include "storage/serde.h"
#include "storage/table.h"
#include "storage/wal.h"
#include "tests/test_util.h"
#include "util/rng.h"

namespace nf2 {
namespace {

/// Creates a fresh scratch directory per test and removes it after.
class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("nf2_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  std::filesystem::path dir_;
};

TEST_F(StorageTest, PageInsertReadDelete) {
  Page page;
  std::optional<uint16_t> s0 = page.Insert("record zero");
  std::optional<uint16_t> s1 = page.Insert("record one");
  ASSERT_TRUE(s0.has_value());
  ASSERT_TRUE(s1.has_value());
  EXPECT_EQ(*page.Read(*s0), "record zero");
  EXPECT_EQ(*page.Read(*s1), "record one");
  ASSERT_TRUE(page.Delete(*s0).ok());
  EXPECT_EQ(page.Read(*s0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(page.Read(*s1).status().code(), StatusCode::kOk);
  EXPECT_EQ(page.Delete(*s0).code(), StatusCode::kNotFound);
  EXPECT_EQ(page.Read(99).status().code(), StatusCode::kOutOfRange);
}

TEST_F(StorageTest, PageFillsUpThenRejects) {
  Page page;
  std::string record(100, 'x');
  size_t inserted = 0;
  while (page.Insert(record).has_value()) {
    ++inserted;
  }
  // ~4096 / 104 ≈ 39 records.
  EXPECT_GT(inserted, 30u);
  EXPECT_LT(inserted, 45u);
  EXPECT_FALSE(page.Insert(record).has_value());
}

TEST_F(StorageTest, PageCompactReclaimsSpace) {
  Page page;
  std::string record(100, 'y');
  std::vector<uint16_t> slots;
  while (true) {
    std::optional<uint16_t> s = page.Insert(record);
    if (!s.has_value()) break;
    slots.push_back(*s);
  }
  // Delete every other record and compact.
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(page.Delete(slots[i]).ok());
  }
  size_t live_before = page.LiveRecords().size();
  page.Compact();
  EXPECT_EQ(page.LiveRecords().size(), live_before);
  EXPECT_TRUE(page.Insert(record).has_value());
}

TEST_F(StorageTest, PageLiveRecordsSkipsTombstones) {
  Page page;
  auto a = page.Insert("a");
  auto b = page.Insert("b");
  auto c = page.Insert("c");
  ASSERT_TRUE(a && b && c);
  ASSERT_TRUE(page.Delete(*b).ok());
  auto live = page.LiveRecords();
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0].second, "a");
  EXPECT_EQ(live[1].second, "c");
}

TEST_F(StorageTest, HeapFileCreateWriteRead) {
  auto hf = HeapFile::Create(Path("t.nf2"));
  ASSERT_TRUE(hf.ok());
  EXPECT_EQ((*hf)->page_count(), 0u);
  Result<PageId> p0 = (*hf)->AllocatePage();
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(*p0, 0u);
  Page page;
  page.Insert("persisted");
  ASSERT_TRUE((*hf)->WritePage(*p0, page).ok());
  ASSERT_TRUE((*hf)->Sync().ok());

  Page loaded;
  ASSERT_TRUE((*hf)->ReadPage(*p0, &loaded).ok());
  EXPECT_EQ(*loaded.Read(0), "persisted");
}

TEST_F(StorageTest, HeapFileReopenSeesData) {
  {
    auto hf = HeapFile::Create(Path("t.nf2"));
    ASSERT_TRUE(hf.ok());
    ASSERT_TRUE((*hf)->AllocatePage().ok());
    ASSERT_TRUE((*hf)->AllocatePage().ok());
    Page page;
    page.Insert("second page record");
    ASSERT_TRUE((*hf)->WritePage(1, page).ok());
  }
  auto reopened = HeapFile::Open(Path("t.nf2"));
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->page_count(), 2u);
  Page loaded;
  ASSERT_TRUE((*reopened)->ReadPage(1, &loaded).ok());
  EXPECT_EQ(*loaded.Read(0), "second page record");
}

TEST_F(StorageTest, HeapFileErrors) {
  EXPECT_EQ(HeapFile::Open(Path("missing.nf2")).status().code(),
            StatusCode::kNotFound);
  // Non-page-aligned file is corrupt.
  {
    std::ofstream f(Path("bad.nf2"), std::ios::binary);
    f << "stub";
  }
  EXPECT_EQ(HeapFile::Open(Path("bad.nf2")).status().code(),
            StatusCode::kCorruption);
  auto hf = HeapFile::Create(Path("t.nf2"));
  ASSERT_TRUE(hf.ok());
  Page page;
  EXPECT_EQ((*hf)->ReadPage(5, &page).code(), StatusCode::kOutOfRange);
  EXPECT_EQ((*hf)->WritePage(5, page).code(), StatusCode::kOutOfRange);
}

TEST_F(StorageTest, BufferPoolCachesAndEvicts) {
  auto hf = HeapFile::Create(Path("t.nf2"));
  ASSERT_TRUE(hf.ok());
  BufferPool pool(hf->get(), 2);
  // Allocate 3 pages through the pool: capacity 2 forces an eviction.
  for (int i = 0; i < 3; ++i) {
    auto allocated = pool.Allocate();
    ASSERT_TRUE(allocated.ok());
    auto [id, page] = *allocated;
    page->Insert(StrCat("page ", id));
    pool.MarkDirty(id);
  }
  EXPECT_EQ(pool.resident_pages(), 2u);
  EXPECT_GE(pool.stats().evictions, 1u);
  EXPECT_GE(pool.stats().writebacks, 1u);  // Evicted page was dirty.
  // Fetching page 0 reloads from disk with the evicted content intact.
  auto page0 = pool.Fetch(0);
  ASSERT_TRUE(page0.ok());
  EXPECT_EQ(*(*page0)->Read(0), "page 0");
}

TEST_F(StorageTest, BufferPoolHitMissAccounting) {
  auto hf = HeapFile::Create(Path("t.nf2"));
  ASSERT_TRUE(hf.ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE((*hf)->AllocatePage().ok());
  BufferPool pool(hf->get(), 4);
  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Fetch(0).ok());
  ASSERT_TRUE(pool.Fetch(1).ok());
  EXPECT_EQ(pool.stats().misses, 2u);
  EXPECT_EQ(pool.stats().hits, 1u);
}

TEST_F(StorageTest, BufferPoolFlushAllPersists) {
  auto hf = HeapFile::Create(Path("t.nf2"));
  ASSERT_TRUE(hf.ok());
  BufferPool pool(hf->get(), 8);
  auto allocated = pool.Allocate();
  ASSERT_TRUE(allocated.ok());
  allocated->second->Insert("durable");
  pool.MarkDirty(allocated->first);
  ASSERT_TRUE(pool.FlushAll().ok());
  Page direct;
  ASSERT_TRUE((*hf)->ReadPage(allocated->first, &direct).ok());
  EXPECT_EQ(*direct.Read(0), "durable");
}

TEST_F(StorageTest, WalAppendAndReadAll) {
  auto wal = WriteAheadLog::Open(Path("wal.log"));
  ASSERT_TRUE(wal.ok());
  WalRecord r1{0, WalOpType::kInsert, "students", "tuple-bytes"};
  WalRecord r2{0, WalOpType::kDelete, "students", "other-bytes"};
  ASSERT_TRUE((*wal)->Append(r1).ok());
  ASSERT_TRUE((*wal)->Append(r2).ok());
  auto read = (*wal)->ReadAll();
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->clean_eof);
  const std::vector<WalRecord>& records = read->records;
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].lsn, 1u);
  EXPECT_EQ(records[1].lsn, 2u);
  EXPECT_EQ(records[0].type, WalOpType::kInsert);
  EXPECT_EQ(records[1].payload, "other-bytes");
}

TEST_F(StorageTest, WalLsnsContinueAcrossReopen) {
  {
    auto wal = WriteAheadLog::Open(Path("wal.log"));
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(
        (*wal)->Append({0, WalOpType::kInsert, "r", "x"}).ok());
  }
  auto wal = WriteAheadLog::Open(Path("wal.log"));
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ((*wal)->next_lsn(), 2u);
  Result<uint64_t> lsn = (*wal)->Append({0, WalOpType::kDelete, "r", "y"});
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(*lsn, 2u);
}

TEST_F(StorageTest, WalTornTailIsIgnored) {
  {
    auto wal = WriteAheadLog::Open(Path("wal.log"));
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append({0, WalOpType::kInsert, "r", "ok"}).ok());
  }
  // Simulate a crash mid-append: garbage half-frame at the tail.
  {
    std::ofstream f(Path("wal.log"), std::ios::binary | std::ios::app);
    uint32_t bogus_len = 1000;
    f.write(reinterpret_cast<const char*>(&bogus_len), 4);
    f << "partial";
  }
  auto wal = WriteAheadLog::Open(Path("wal.log"));
  ASSERT_TRUE(wal.ok());
  // Open cut the garbage off, and the surviving prefix is cached.
  EXPECT_TRUE((*wal)->truncated_on_open());
  ASSERT_EQ((*wal)->recovered_records().size(), 1u);
  EXPECT_EQ((*wal)->recovered_records()[0].payload, "ok");
  auto read = (*wal)->ReadAll();
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->clean_eof);  // The tail is gone from disk.
  ASSERT_EQ(read->records.size(), 1u);
  EXPECT_EQ(read->records[0].payload, "ok");
}

TEST_F(StorageTest, WalAppendAfterTornTailKeepsNewRecords) {
  // Regression: records appended after a torn tail used to land AFTER
  // the garbage, so replay (which stops at the first bad frame) would
  // silently drop them at the next open. Open must truncate first.
  {
    auto wal = WriteAheadLog::Open(Path("wal.log"));
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append({0, WalOpType::kInsert, "r", "one"}).ok());
  }
  {
    std::ofstream f(Path("wal.log"), std::ios::binary | std::ios::app);
    uint32_t bogus_len = 1000;
    f.write(reinterpret_cast<const char*>(&bogus_len), 4);
    f << "partial";
  }
  {
    auto wal = WriteAheadLog::Open(Path("wal.log"));
    ASSERT_TRUE(wal.ok());
    EXPECT_TRUE((*wal)->truncated_on_open());
    ASSERT_TRUE((*wal)->Append({0, WalOpType::kInsert, "r", "two"}).ok());
    ASSERT_TRUE((*wal)->Append({0, WalOpType::kInsert, "r", "three"}).ok());
  }
  auto wal = WriteAheadLog::Open(Path("wal.log"));
  ASSERT_TRUE(wal.ok());
  EXPECT_FALSE((*wal)->truncated_on_open());
  const std::vector<WalRecord>& records = (*wal)->recovered_records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].payload, "one");
  EXPECT_EQ(records[1].payload, "two");
  EXPECT_EQ(records[2].payload, "three");
}

TEST_F(StorageTest, WalCorruptedRecordStopsReplay) {
  {
    auto wal = WriteAheadLog::Open(Path("wal.log"));
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->Append({0, WalOpType::kInsert, "r", "first"}).ok());
    ASSERT_TRUE((*wal)->Append({0, WalOpType::kInsert, "r", "second"}).ok());
  }
  // Flip a byte inside the second frame's payload.
  {
    std::fstream f(Path("wal.log"),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(0, std::ios::end);
    std::streamoff size = f.tellg();
    f.seekp(size - 8);
    f.put('!');
  }
  auto wal = WriteAheadLog::Open(Path("wal.log"));
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE((*wal)->truncated_on_open());
  const std::vector<WalRecord>& records = (*wal)->recovered_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].payload, "first");
}

TEST_F(StorageTest, WalReset) {
  auto wal = WriteAheadLog::Open(Path("wal.log"));
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append({0, WalOpType::kInsert, "r", "x"}).ok());
  ASSERT_TRUE((*wal)->Reset().ok());
  auto read = (*wal)->ReadAll();
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->records.empty());
  EXPECT_TRUE(read->clean_eof);
  // The truncate does NOT rewind the LSN counter (positions are
  // globally monotone; see WalPosition): the next append continues the
  // sequence under a bumped epoch.
  EXPECT_EQ((*wal)->next_lsn(), 2u);
  EXPECT_EQ((*wal)->epoch(), 1u);
  EXPECT_EQ((*wal)->epoch_base_lsn(), 2u);
}

TEST_F(StorageTest, WalResetNeverReissuesAnLsn) {
  // Regression: Reset() used to rewind next_lsn_ to 1, so the record
  // after a truncate reused the position of a record before it — a log
  // shipper that saw both would silently drop the second as a
  // duplicate. Positions must be strictly monotone across Reset.
  auto wal = WriteAheadLog::Open(Path("wal.log"));
  ASSERT_TRUE(wal.ok());
  std::vector<uint64_t> lsns;
  for (int i = 0; i < 3; ++i) {
    auto lsn = (*wal)->Append({0, WalOpType::kInsert, "r", StrCat("a", i)});
    ASSERT_TRUE(lsn.ok());
    lsns.push_back(*lsn);
  }
  ASSERT_TRUE((*wal)->Reset().ok());
  for (int i = 0; i < 3; ++i) {
    auto lsn = (*wal)->Append({0, WalOpType::kInsert, "r", StrCat("b", i)});
    ASSERT_TRUE(lsn.ok());
    lsns.push_back(*lsn);
  }
  for (size_t i = 1; i < lsns.size(); ++i) {
    EXPECT_GT(lsns[i], lsns[i - 1]) << "position " << i;
  }
}

TEST_F(StorageTest, WalAdoptDurablePositionSurvivesReopen) {
  // After Reset() + close, the log file is empty — a bare reopen would
  // restart LSNs at 1. The checkpoint manifest persists the position;
  // AdoptDurablePosition folds it forward at recovery.
  uint64_t last_lsn = 0;
  {
    auto wal = WriteAheadLog::Open(Path("wal.log"));
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 5; ++i) {
      auto lsn = (*wal)->Append({0, WalOpType::kInsert, "r", "x"});
      ASSERT_TRUE(lsn.ok());
      last_lsn = *lsn;
    }
    ASSERT_TRUE((*wal)->Reset().ok());
  }
  auto wal = WriteAheadLog::Open(Path("wal.log"));
  ASSERT_TRUE(wal.ok());
  (*wal)->AdoptDurablePosition(/*epoch=*/1, /*base_lsn=*/last_lsn + 1);
  EXPECT_EQ((*wal)->epoch(), 1u);
  auto lsn = (*wal)->Append({0, WalOpType::kInsert, "r", "y"});
  ASSERT_TRUE(lsn.ok());
  EXPECT_GT(*lsn, last_lsn);
  // Folding is forward-only: a stale (older) manifest cannot rewind.
  (*wal)->AdoptDurablePosition(/*epoch=*/0, /*base_lsn=*/1);
  EXPECT_EQ((*wal)->epoch(), 1u);
  EXPECT_EQ((*wal)->next_lsn(), *lsn + 1);
}

TEST_F(StorageTest, WalResetFailureFailsClosed) {
  // Regression: when Reset() could not reopen the log file, Append kept
  // writing through the stale (closed) handle. It must fail closed —
  // every Append returns a status until a later Reset succeeds.
  FaultInjectionEnv fenv(Env::Default(), /*seed=*/7);
  auto wal = WriteAheadLog::Open(&fenv, Path("wal.log"), {});
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->Append({0, WalOpType::kInsert, "r", "a"}).ok());
  fenv.Arm(1);  // The next mutating operation dies mid-syscall.
  Status reset = (*wal)->Reset();
  ASSERT_FALSE(reset.ok());
  Result<uint64_t> append = (*wal)->Append({0, WalOpType::kInsert, "r", "b"});
  ASSERT_FALSE(append.ok());
  EXPECT_EQ(append.status().code(), StatusCode::kIOError);
  // Service resumes once a Reset goes through.
  fenv.Arm(1u << 30);  // Clears the kill flag; trigger far away.
  ASSERT_TRUE((*wal)->Reset().ok());
  auto lsn = (*wal)->Append({0, WalOpType::kInsert, "r", "c"});
  ASSERT_TRUE(lsn.ok());
}

TEST_F(StorageTest, WalReleaseRecoveredRecordsFreesTheCache) {
  {
    auto wal = WriteAheadLog::Open(Path("wal.log"));
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE((*wal)->Append({0, WalOpType::kInsert, "r", "x"}).ok());
    }
  }
  auto wal = WriteAheadLog::Open(Path("wal.log"));
  ASSERT_TRUE(wal.ok());
  ASSERT_EQ((*wal)->recovered_records().size(), 4u);
  (*wal)->ReleaseRecoveredRecords();
  EXPECT_TRUE((*wal)->recovered_records().empty());
  // The file itself is untouched: ReadAll still re-scans on demand.
  auto read = (*wal)->ReadAll();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->records.size(), 4u);
}

TEST_F(StorageTest, WalTailSubscriptionSeesAppendsAndTruncate) {
  auto wal = WriteAheadLog::Open(Path("wal.log"));
  ASSERT_TRUE(wal.ok());
  std::shared_ptr<WalTailSubscription> tail = (*wal)->SubscribeTail();
  ASSERT_TRUE((*wal)->Append({0, WalOpType::kInsert, "r", "one"}).ok());
  ASSERT_TRUE((*wal)->Append({0, WalOpType::kInsert, "r", "two"}).ok());
  std::vector<WalTailEvent> events =
      tail->Poll(std::chrono::milliseconds(1000));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, WalTailEvent::Kind::kRecord);
  EXPECT_EQ(events[0].record.payload, "one");
  EXPECT_EQ(events[1].record.lsn, 2u);
  ASSERT_TRUE((*wal)->Reset().ok());
  events = tail->Poll(std::chrono::milliseconds(1000));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, WalTailEvent::Kind::kTruncate);
  EXPECT_EQ(events[0].epoch, 1u);
  EXPECT_EQ(events[0].record.lsn, 3u);  // New epoch base.
  EXPECT_FALSE(tail->lost());
  EXPECT_FALSE(tail->closed());
}

TEST_F(StorageTest, WalTailSubscriptionOverflowLatchesLost) {
  auto wal = WriteAheadLog::Open(Path("wal.log"));
  ASSERT_TRUE(wal.ok());
  std::shared_ptr<WalTailSubscription> tail =
      (*wal)->SubscribeTail(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*wal)->Append({0, WalOpType::kInsert, "r", "x"}).ok());
  }
  EXPECT_TRUE(tail->lost());
  std::vector<WalTailEvent> events =
      tail->Poll(std::chrono::milliseconds(1000));
  EXPECT_LE(events.size(), 4u);  // Only the newest survive.
  EXPECT_EQ(events.back().record.lsn, 10u);
  tail->ClearLost();
  EXPECT_FALSE(tail->lost());
}

TEST_F(StorageTest, WalTailSubscriptionClosedOnDestruction) {
  std::shared_ptr<WalTailSubscription> tail;
  {
    auto wal = WriteAheadLog::Open(Path("wal.log"));
    ASSERT_TRUE(wal.ok());
    tail = (*wal)->SubscribeTail();
    ASSERT_TRUE((*wal)->Append({0, WalOpType::kInsert, "r", "x"}).ok());
  }
  EXPECT_TRUE(tail->closed());
  std::vector<WalTailEvent> events =
      tail->Poll(std::chrono::milliseconds(100));
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().kind, WalTailEvent::Kind::kClosed);
}

TEST_F(StorageTest, WalRandomCorruptionNeverCrashesAndKeepsPrefix) {
  // Property: flipping any single byte of the log yields, at worst, a
  // clean prefix of the original records — never a crash, never a
  // corrupted record passed through.
  std::vector<WalRecord> original;
  {
    auto wal = WriteAheadLog::Open(Path("wal.log"));
    ASSERT_TRUE(wal.ok());
    for (int i = 0; i < 6; ++i) {
      WalRecord r{0, i % 2 == 0 ? WalOpType::kInsert : WalOpType::kDelete,
                  StrCat("rel", i), StrCat("payload-", i)};
      ASSERT_TRUE((*wal)->Append(r).ok());
    }
    auto all = (*wal)->ReadAll();
    ASSERT_TRUE(all.ok());
    original = all->records;
  }
  std::ifstream in(Path("wal.log"), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  Rng rng(1234);
  for (int trial = 0; trial < 60; ++trial) {
    std::string corrupted = bytes;
    size_t pos = rng.NextBelow(corrupted.size());
    corrupted[pos] = static_cast<char>(corrupted[pos] ^
                                       (1u << rng.NextBelow(8)));
    std::string path = Path(StrCat("wal_fuzz_", trial, ".log"));
    {
      std::ofstream out(path, std::ios::binary);
      out << corrupted;
    }
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    const std::vector<WalRecord>& records = (*wal)->recovered_records();
    ASSERT_LE(records.size(), original.size());
    for (size_t i = 0; i < records.size(); ++i) {
      // Each surviving record is bit-exact (CRC catches payload damage)
      // OR the damage hit this record and truncated the log before it.
      EXPECT_EQ(records[i], original[i]) << "trial " << trial;
    }
  }
}

TEST_F(StorageTest, TableRejectsOversizedTuple) {
  Schema schema = Schema::OfStrings({"A"});
  auto table = Table::Create(Path("r.tbl"), schema, {0});
  ASSERT_TRUE(table.ok());
  // One giant string value larger than a page.
  std::string huge(kPageSize + 100, 'x');
  Result<RecordId> rid =
      (*table)->Append(NfrTuple{ValueSet(Value::String(huge))});
  ASSERT_FALSE(rid.ok());
  EXPECT_EQ(rid.status().code(), StatusCode::kInvalidArgument);
  // The table remains usable afterwards.
  EXPECT_TRUE((*table)->Append(NfrTuple{ValueSet(V("ok"))}).ok());
}

TEST_F(StorageTest, TableCreateAppendScan) {
  Schema schema = Schema::OfStrings({"A", "B"});
  auto table = Table::Create(Path("r.tbl"), schema, {0, 1});
  ASSERT_TRUE(table.ok());
  NfrTuple t1{ValueSet{V("a1"), V("a2")}, ValueSet(V("b1"))};
  NfrTuple t2{ValueSet(V("a3")), ValueSet(V("b2"))};
  ASSERT_TRUE((*table)->Append(t1).ok());
  ASSERT_TRUE((*table)->Append(t2).ok());
  auto all = (*table)->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);
  NfrRelation expected(schema);
  expected.Add(t1);
  expected.Add(t2);
  EXPECT_TRUE(all->EqualsAsSet(expected));
}

TEST_F(StorageTest, TablePersistsAcrossReopen) {
  Schema schema = Schema::OfStrings({"A", "B"});
  NfrTuple t{ValueSet{V("a1"), V("a2")}, ValueSet(V("b1"))};
  {
    auto table = Table::Create(Path("r.tbl"), schema, {1, 0});
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE((*table)->Append(t).ok());
    ASSERT_TRUE((*table)->Flush().ok());
  }
  auto reopened = Table::Open(Path("r.tbl"));
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->schema(), schema);
  EXPECT_EQ((*reopened)->nest_order(), (Permutation{1, 0}));
  auto all = (*reopened)->ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ(all->tuple(0), t);
}

TEST_F(StorageTest, TableEraseRemovesTuple) {
  Schema schema = Schema::OfStrings({"A"});
  auto table = Table::Create(Path("r.tbl"), schema, {0});
  ASSERT_TRUE(table.ok());
  Result<RecordId> rid = (*table)->Append(NfrTuple{ValueSet(V("x"))});
  ASSERT_TRUE(rid.ok());
  ASSERT_TRUE((*table)->Append(NfrTuple{ValueSet(V("y"))}).ok());
  ASSERT_TRUE((*table)->Erase(*rid).ok());
  auto all = (*table)->ReadAll();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 1u);
  EXPECT_EQ(all->tuple(0), NfrTuple{ValueSet(V("y"))});
}

TEST_F(StorageTest, TableSpillsAcrossPages) {
  Schema schema = Schema::OfStrings({"A", "B"});
  auto table = Table::Create(Path("r.tbl"), schema, {0, 1}, /*pool=*/4);
  ASSERT_TRUE(table.ok());
  // Enough tuples with fat components to exceed a few pages.
  NfrRelation expected(schema);
  for (int i = 0; i < 300; ++i) {
    ValueSet courses;
    for (int j = 0; j < 8; ++j) {
      courses.Insert(V(StrCat("course_with_long_name_", i, "_", j).c_str()));
    }
    NfrTuple t{ValueSet(V(StrCat("student", i).c_str())), courses};
    expected.Add(t);
    ASSERT_TRUE((*table)->Append(t).ok());
  }
  ASSERT_TRUE((*table)->Flush().ok());
  auto all = (*table)->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all->EqualsAsSet(expected));
  // More than one page and pool pressure happened.
  EXPECT_GT((*table)->pool_stats().evictions, 0u);
}

TEST_F(StorageTest, TableRewriteReplacesContents) {
  Schema schema = Schema::OfStrings({"A"});
  auto table = Table::Create(Path("r.tbl"), schema, {0});
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->Append(NfrTuple{ValueSet(V("old"))}).ok());
  NfrRelation fresh(schema);
  fresh.Add(NfrTuple{ValueSet(V("new1"))});
  fresh.Add(NfrTuple{ValueSet(V("new2"))});
  ASSERT_TRUE((*table)->Rewrite(fresh).ok());
  auto all = (*table)->ReadAll();
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all->EqualsAsSet(fresh));
  // And it survives reopen.
  auto reopened = Table::Open(Path("r.tbl"));
  ASSERT_TRUE(reopened.ok());
  auto all2 = (*reopened)->ReadAll();
  ASSERT_TRUE(all2.ok());
  EXPECT_TRUE(all2->EqualsAsSet(fresh));
}

TEST_F(StorageTest, TableRejectsBadInputs) {
  Schema schema = Schema::OfStrings({"A", "B"});
  EXPECT_FALSE(Table::Create(Path("r.tbl"), schema, {0}).ok());
  auto table = Table::Create(Path("r2.tbl"), schema, {0, 1});
  ASSERT_TRUE(table.ok());
  EXPECT_FALSE((*table)->Append(NfrTuple{ValueSet(V("x"))}).ok());
  NfrRelation wrong(Schema::OfStrings({"Z"}));
  EXPECT_FALSE((*table)->Rewrite(wrong).ok());
}

// ---- Incremental checkpoint manifest (DESIGN.md §12) ------------------

namespace {
/// A relation big enough to span several pages: `n` tuples with a
/// payload string so each record is a few hundred bytes.
NfrRelation BulkRelation(const Schema& schema, size_t n,
                         const std::string& tag) {
  NfrRelation rel(schema);
  for (size_t i = 0; i < n; ++i) {
    rel.Add(NfrTuple{ValueSet(V(StrCat(tag, "_k", i).c_str())),
                     ValueSet(V(std::string(200, 'p').c_str()))});
  }
  return rel;
}

Manifest SampleManifest() {
  Manifest m;
  m.checkpoint_seq = 7;
  m.dict_size = 42;
  TableManifest t;
  t.file_id = 0xDEADBEEFCAFEull;
  t.physical_pages = 5;
  t.pages = {{0, 1, 0x1111}, {3, 7, 0x2222}, {1, 6, 0x3333}};
  m.tables.emplace("acct.tbl", t);
  TableManifest u;
  u.file_id = 99;
  u.physical_pages = 1;
  u.pages = {{0, 2, 0x4444}};
  m.tables.emplace("dept.tbl", u);
  return m;
}
}  // namespace

TEST_F(StorageTest, ManifestRoundTripThroughFile) {
  Manifest m = SampleManifest();
  ASSERT_TRUE(SaveManifestAtomic(Env::Default(), Path("MANIFEST.nf2"), m).ok());
  Result<Manifest> loaded = LoadManifest(Env::Default(), Path("MANIFEST.nf2"));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, m);
}

TEST_F(StorageTest, ManifestMissingIsNotFound) {
  Result<Manifest> loaded = LoadManifest(Env::Default(), Path("nope.nf2"));
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(StorageTest, CorruptManifestFailsClosed) {
  ASSERT_TRUE(SaveManifestAtomic(Env::Default(), Path("MANIFEST.nf2"),
                                 SampleManifest())
                  .ok());
  Result<std::string> bytes =
      Env::Default()->ReadFileToString(Path("MANIFEST.nf2"));
  ASSERT_TRUE(bytes.ok());
  // Every single-byte flip must be detected — the mapping decides which
  // physical page is live, so a wrong guess silently mixes versions.
  for (size_t pos : {size_t{0}, size_t{9}, bytes->size() / 2,
                     bytes->size() - 1}) {
    std::string mutated = *bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x40);
    ASSERT_TRUE(
        Env::Default()->WriteFileAtomic(Path("MANIFEST.nf2"), mutated).ok());
    Result<Manifest> loaded =
        LoadManifest(Env::Default(), Path("MANIFEST.nf2"));
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
        << "flip at byte " << pos << " went undetected";
  }
}

TEST_F(StorageTest, TruncatedManifestFailsClosed) {
  ASSERT_TRUE(SaveManifestAtomic(Env::Default(), Path("MANIFEST.nf2"),
                                 SampleManifest())
                  .ok());
  Result<std::string> bytes =
      Env::Default()->ReadFileToString(Path("MANIFEST.nf2"));
  ASSERT_TRUE(bytes.ok());
  for (size_t keep : {size_t{0}, size_t{3}, size_t{10}, bytes->size() - 1}) {
    ASSERT_TRUE(Env::Default()
                    ->WriteFileAtomic(Path("MANIFEST.nf2"),
                                      bytes->substr(0, keep))
                    .ok());
    Result<Manifest> loaded =
        LoadManifest(Env::Default(), Path("MANIFEST.nf2"));
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
        << "truncation to " << keep << " bytes went undetected";
  }
}

TEST_F(StorageTest, CheckpointDeltaAdoptsFreshFlatFileWithZeroWrites) {
  Schema schema = Schema::OfStrings({"K", "P"});
  NfrRelation rel = BulkRelation(schema, 60, "a");
  ASSERT_TRUE(
      WriteTableAtomic(Env::Default(), Path("r.tbl"), schema, {0, 1}, rel)
          .ok());
  TableManifest entry;
  Result<CheckpointDeltaStats> stats = CheckpointTableDelta(
      Env::Default(), Path("r.tbl"), schema, {0, 1}, rel, &entry,
      /*new_version=*/1);
  ASSERT_TRUE(stats.ok()) << stats.status();
  // The file WriteTableAtomic just produced serializes identically, so
  // adoption costs zero writes.
  EXPECT_EQ(stats->pages_written, 0u);
  EXPECT_GT(stats->pages_skipped, 0u);
  EXPECT_EQ(entry.file_id, ProbeTableFileId(Env::Default(), Path("r.tbl")));
  Result<MappedTable> mapped =
      ReadTableMapped(Env::Default(), Path("r.tbl"), entry);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_TRUE(mapped->relation.EqualsAsSet(rel));
}

TEST_F(StorageTest, CheckpointDeltaWritesOnlyChangedPages) {
  Schema schema = Schema::OfStrings({"K", "P"});
  NfrRelation rel = BulkRelation(schema, 60, "a");
  ASSERT_TRUE(
      WriteTableAtomic(Env::Default(), Path("r.tbl"), schema, {0, 1}, rel)
          .ok());
  TableManifest entry;
  ASSERT_TRUE(CheckpointTableDelta(Env::Default(), Path("r.tbl"), schema,
                                   {0, 1}, rel, &entry, 1)
                  .ok());
  const size_t total_pages = entry.pages.size();
  ASSERT_GT(total_pages, 3u) << "need a multi-page table for this test";
  // Append one tuple: only the last data page (and nothing else)
  // differs in the serialized image.
  rel.Add(NfrTuple{ValueSet(V("late_arrival")),
                   ValueSet(V(std::string(200, 'p').c_str()))});
  Result<CheckpointDeltaStats> stats = CheckpointTableDelta(
      Env::Default(), Path("r.tbl"), schema, {0, 1}, rel, &entry, 2);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GT(stats->pages_skipped, 0u);
  EXPECT_LE(stats->pages_written, 2u);
  EXPECT_EQ(stats->bytes_written, stats->pages_written * kPageSize);
  // The mapped read sees the new state, bit-exactly.
  Result<MappedTable> mapped =
      ReadTableMapped(Env::Default(), Path("r.tbl"), entry);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_TRUE(mapped->relation.EqualsAsSet(rel));
  // Old versions were parked in shadow slots, not overwritten: the
  // pre-delta mapping must still read back the OLD state.
}

TEST_F(StorageTest, CheckpointDeltaPreservesOldMappedVersions) {
  Schema schema = Schema::OfStrings({"K", "P"});
  NfrRelation rel = BulkRelation(schema, 60, "a");
  ASSERT_TRUE(
      WriteTableAtomic(Env::Default(), Path("r.tbl"), schema, {0, 1}, rel)
          .ok());
  TableManifest entry;
  ASSERT_TRUE(CheckpointTableDelta(Env::Default(), Path("r.tbl"), schema,
                                   {0, 1}, rel, &entry, 1)
                  .ok());
  TableManifest old_entry = entry;
  NfrRelation old_rel = rel;
  for (size_t i = 0; i < 20; ++i) {
    rel.Add(NfrTuple{ValueSet(V(StrCat("b_k", i).c_str())),
                     ValueSet(V(std::string(200, 'q').c_str()))});
  }
  ASSERT_TRUE(CheckpointTableDelta(Env::Default(), Path("r.tbl"), schema,
                                   {0, 1}, rel, &entry, 2)
                  .ok());
  // Shadow paging: the old manifest's slots are untouched, so a crash
  // before the new manifest lands still recovers the old state.
  Result<MappedTable> old_read =
      ReadTableMapped(Env::Default(), Path("r.tbl"), old_entry);
  ASSERT_TRUE(old_read.ok()) << old_read.status();
  EXPECT_TRUE(old_read->relation.EqualsAsSet(old_rel));
  Result<MappedTable> new_read =
      ReadTableMapped(Env::Default(), Path("r.tbl"), entry);
  ASSERT_TRUE(new_read.ok()) << new_read.status();
  EXPECT_TRUE(new_read->relation.EqualsAsSet(rel));
}

TEST_F(StorageTest, ReadTableMappedDetectsPageCorruption) {
  Schema schema = Schema::OfStrings({"K", "P"});
  NfrRelation rel = BulkRelation(schema, 60, "a");
  ASSERT_TRUE(
      WriteTableAtomic(Env::Default(), Path("r.tbl"), schema, {0, 1}, rel)
          .ok());
  TableManifest entry;
  ASSERT_TRUE(CheckpointTableDelta(Env::Default(), Path("r.tbl"), schema,
                                   {0, 1}, rel, &entry, 1)
                  .ok());
  // Scribble into the middle of a mapped page.
  {
    std::fstream f(Path("r.tbl"),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(static_cast<std::streamoff>(kPageSize) + 100);
    f.write("XXXX", 4);
  }
  Result<MappedTable> mapped =
      ReadTableMapped(Env::Default(), Path("r.tbl"), entry);
  EXPECT_EQ(mapped.status().code(), StatusCode::kCorruption);
}

TEST_F(StorageTest, StaleManifestEntryDetectedByIdentityStamp) {
  Schema schema = Schema::OfStrings({"K", "P"});
  NfrRelation rel = BulkRelation(schema, 60, "a");
  ASSERT_TRUE(
      WriteTableAtomic(Env::Default(), Path("r.tbl"), schema, {0, 1}, rel)
          .ok());
  TableManifest entry;
  ASSERT_TRUE(CheckpointTableDelta(Env::Default(), Path("r.tbl"), schema,
                                   {0, 1}, rel, &entry, 1)
                  .ok());
  // Wholesale-replace the file (what a DROP + CREATE does): the fresh
  // file carries a new identity stamp, so the old mapping must be
  // recognizably stale — recovery probes the stamp and reads flat.
  NfrRelation fresh = BulkRelation(schema, 5, "fresh");
  ASSERT_TRUE(
      WriteTableAtomic(Env::Default(), Path("r.tbl"), schema, {0, 1}, fresh)
          .ok());
  EXPECT_NE(ProbeTableFileId(Env::Default(), Path("r.tbl")), entry.file_id);
  // A mapped read through the stale entry must fail closed, not hand
  // back a mix of old and new pages.
  Result<MappedTable> mapped =
      ReadTableMapped(Env::Default(), Path("r.tbl"), entry);
  EXPECT_EQ(mapped.status().code(), StatusCode::kCorruption);
}

TEST_F(StorageTest, SerializeTablePagesMatchesTableLayout) {
  Schema schema = Schema::OfStrings({"K", "P"});
  NfrRelation rel = BulkRelation(schema, 60, "a");
  ASSERT_TRUE(
      WriteTableAtomic(Env::Default(), Path("r.tbl"), schema, {0, 1}, rel)
          .ok());
  const uint64_t id = ProbeTableFileId(Env::Default(), Path("r.tbl"));
  ASSERT_NE(id, 0u);
  Result<std::vector<Page>> pages =
      SerializeTablePages(schema, {0, 1}, id, rel);
  ASSERT_TRUE(pages.ok());
  auto file = HeapFile::Open(Env::Default(), Path("r.tbl"));
  ASSERT_TRUE(file.ok());
  ASSERT_EQ((*file)->page_count(), pages->size());
  Page on_disk;
  for (PageId i = 0; i < (*file)->page_count(); ++i) {
    ASSERT_TRUE((*file)->ReadPage(i, &on_disk).ok());
    EXPECT_EQ(Crc32(std::string_view(on_disk.data(), kPageSize)),
              Crc32(std::string_view((*pages)[i].data(), kPageSize)))
        << "page " << i << " serializes differently than Table::Append";
  }
}

TEST_F(StorageTest, HeapFileToleratesTornTailWhenAsked) {
  {
    auto hf = HeapFile::Create(Env::Default(), Path("torn.heap"));
    ASSERT_TRUE(hf.ok());
    Page p;
    p.Format();
    ASSERT_TRUE((*hf)->WritePageAt(0, p).ok());
    ASSERT_TRUE((*hf)->WritePageAt(1, p).ok());
    ASSERT_TRUE((*hf)->Sync().ok());
  }
  // Simulate a crash mid-append: a trailing partial page.
  {
    std::ofstream f(Path("torn.heap"),
                    std::ios::app | std::ios::binary);
    f.write("partial page bytes", 18);
  }
  EXPECT_EQ(HeapFile::Open(Env::Default(), Path("torn.heap"))
                .status()
                .code(),
            StatusCode::kCorruption);
  auto tolerant = HeapFile::Open(Env::Default(), Path("torn.heap"),
                                 /*tolerate_torn_tail=*/true);
  ASSERT_TRUE(tolerant.ok());
  EXPECT_EQ((*tolerant)->page_count(), 2u);
}

}  // namespace
}  // namespace nf2
