#include <gtest/gtest.h>

#include "core/tuple.h"

namespace nf2 {
namespace {

NfrTuple PaperTuple() {
  // [A(a1,a2) B(b1)] from §3.1's example.
  return NfrTuple{ValueSet{V("a1"), V("a2")}, ValueSet(V("b1"))};
}

TEST(FlatTupleTest, BasicAccessors) {
  FlatTuple t{V("s1"), V("c1")};
  EXPECT_EQ(t.degree(), 2u);
  EXPECT_EQ(t.at(0), V("s1"));
  EXPECT_EQ(t.at(1), V("c1"));
}

TEST(FlatTupleTest, EqualityAndOrdering) {
  FlatTuple a{V("a"), V("b")};
  FlatTuple b{V("a"), V("c")};
  EXPECT_EQ(a, (FlatTuple{V("a"), V("b")}));
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_LT((FlatTuple{V("a")}), (FlatTuple{V("a"), V("b")}));
}

TEST(FlatTupleTest, Hash) {
  FlatTuple a{V("a"), V("b")};
  EXPECT_EQ(a.Hash(), (FlatTuple{V("a"), V("b")}).Hash());
  EXPECT_NE(a.Hash(), (FlatTuple{V("b"), V("a")}).Hash());
}

TEST(FlatTupleTest, ToString) {
  EXPECT_EQ((FlatTuple{V("s1"), V("c1")}).ToString(), "(s1, c1)");
}

TEST(NfrTupleTest, FromFlatMakesSingletons) {
  NfrTuple t = NfrTuple::FromFlat(FlatTuple{V("x"), V("y")});
  EXPECT_TRUE(t.IsSimple());
  EXPECT_EQ(t.at(0).single(), V("x"));
}

TEST(NfrTupleTest, IsSimpleFalseForCompound) {
  EXPECT_FALSE(PaperTuple().IsSimple());
}

TEST(NfrTupleTest, WellFormedness) {
  EXPECT_TRUE(PaperTuple().IsWellFormed());
  NfrTuple bad{ValueSet(), ValueSet(V("b1"))};
  EXPECT_FALSE(bad.IsWellFormed());
}

TEST(NfrTupleTest, ExpandedCountIsProductOfComponentSizes) {
  // The §3.1 semantics: [A(a1,a2) B(b1)] denotes 2 simple tuples.
  EXPECT_EQ(PaperTuple().ExpandedCount(), 2u);
  NfrTuple t{ValueSet{V("a"), V("b"), V("c")}, ValueSet{V("x"), V("y")}};
  EXPECT_EQ(t.ExpandedCount(), 6u);
}

TEST(NfrTupleTest, ExpandMatchesPaperExample) {
  // "[A(a1,a2) B(b1)] means the set of two tuples [A(a1) B(b1)] and
  // [A(a2) B(b1)]" (§3.1).
  std::vector<FlatTuple> expanded = PaperTuple().Expand();
  ASSERT_EQ(expanded.size(), 2u);
  EXPECT_EQ(expanded[0], (FlatTuple{V("a1"), V("b1")}));
  EXPECT_EQ(expanded[1], (FlatTuple{V("a2"), V("b1")}));
}

TEST(NfrTupleTest, ExpandIsSorted) {
  NfrTuple t{ValueSet{V("b"), V("a")}, ValueSet{V("y"), V("x")}};
  std::vector<FlatTuple> expanded = t.Expand();
  ASSERT_EQ(expanded.size(), 4u);
  EXPECT_TRUE(std::is_sorted(expanded.begin(), expanded.end()));
}

TEST(NfrTupleTest, ExpansionContains) {
  NfrTuple t = PaperTuple();
  EXPECT_TRUE(t.ExpansionContains(FlatTuple{V("a1"), V("b1")}));
  EXPECT_TRUE(t.ExpansionContains(FlatTuple{V("a2"), V("b1")}));
  EXPECT_FALSE(t.ExpansionContains(FlatTuple{V("a3"), V("b1")}));
  EXPECT_FALSE(t.ExpansionContains(FlatTuple{V("a1"), V("b2")}));
  EXPECT_FALSE(t.ExpansionContains(FlatTuple{V("a1")}));  // Degree mismatch.
}

TEST(NfrTupleTest, AgreesExcept) {
  NfrTuple t1{ValueSet{V("a1"), V("a2")}, ValueSet{V("b1"), V("b2")},
              ValueSet(V("c1"))};
  NfrTuple t2{ValueSet{V("a1"), V("a2")}, ValueSet(V("b3")),
              ValueSet(V("c1"))};
  EXPECT_TRUE(t1.AgreesExcept(t2, 1));
  EXPECT_FALSE(t1.AgreesExcept(t2, 0));
  EXPECT_FALSE(t1.AgreesExcept(t2, 2));
}

TEST(NfrTupleTest, ComponentwiseSubset) {
  NfrTuple small{ValueSet(V("a1")), ValueSet(V("b1"))};
  NfrTuple big{ValueSet{V("a1"), V("a2")}, ValueSet{V("b1"), V("b2")}};
  EXPECT_TRUE(small.IsComponentwiseSubsetOf(big));
  EXPECT_FALSE(big.IsComponentwiseSubsetOf(small));
  EXPECT_TRUE(big.IsComponentwiseSubsetOf(big));
}

TEST(NfrTupleTest, EqualityIsSetBased) {
  NfrTuple a{ValueSet{V("a2"), V("a1")}, ValueSet(V("b1"))};
  EXPECT_EQ(a, PaperTuple());
}

TEST(NfrTupleTest, HashConsistent) {
  NfrTuple a{ValueSet{V("a2"), V("a1")}, ValueSet(V("b1"))};
  EXPECT_EQ(a.Hash(), PaperTuple().Hash());
}

TEST(NfrTupleTest, ToStringWithSchema) {
  Schema schema = Schema::OfStrings({"A", "B"});
  EXPECT_EQ(PaperTuple().ToString(schema), "[A(a1,a2) B(b1)]");
}

TEST(NfrTupleTest, ToStringWithoutSchemaUsesPositions) {
  EXPECT_EQ(PaperTuple().ToString(), "[E1(a1,a2) E2(b1)]");
}

TEST(NfrTupleTest, ExpandedCountSaturates) {
  // 5^30 overflows uint64; the count must saturate, not wrap.
  std::vector<ValueSet> comps;
  for (int i = 0; i < 30; ++i) {
    ValueSet s;
    for (int j = 0; j < 5; ++j) {
      s.Insert(Value::Int(j));
    }
    comps.push_back(s);
  }
  NfrTuple t(std::move(comps));
  EXPECT_EQ(t.ExpandedCount(), std::numeric_limits<uint64_t>::max());
}

}  // namespace
}  // namespace nf2
