#ifndef NF2_TESTS_TEST_UTIL_H_
#define NF2_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "core/relation.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace nf2 {

/// Generates a random 1NF relation for property tests: `degree`
/// attributes named E1..En with per-attribute active domains of size
/// `domain_size`, and ~`target_tuples` distinct random tuples. Small
/// domains force heavy value sharing, which is what exercises
/// nesting/composition paths.
inline FlatRelation RandomFlatRelation(Rng* rng, size_t degree,
                                       size_t domain_size,
                                       size_t target_tuples) {
  std::vector<std::string> names;
  for (size_t i = 0; i < degree; ++i) {
    names.push_back(StrCat("E", i + 1));
  }
  FlatRelation rel(Schema::OfStrings(names));
  for (size_t t = 0; t < target_tuples; ++t) {
    std::vector<Value> values;
    values.reserve(degree);
    for (size_t i = 0; i < degree; ++i) {
      values.push_back(
          Value::String(StrCat("v", i, "_", rng->NextBelow(domain_size))));
    }
    rel.Insert(FlatTuple(std::move(values)));
  }
  return rel;
}

}  // namespace nf2

#endif  // NF2_TESTS_TEST_UTIL_H_
