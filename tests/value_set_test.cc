#include <gtest/gtest.h>

#include "core/value_set.h"

namespace nf2 {
namespace {

ValueSet Strings(std::initializer_list<const char*> items) {
  std::vector<Value> values;
  for (const char* s : items) values.push_back(Value::String(s));
  return ValueSet(std::move(values));
}

TEST(ValueSetTest, DefaultIsEmpty) {
  ValueSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.IsSingleton());
}

TEST(ValueSetTest, SingletonConstructor) {
  ValueSet s(V("c1"));
  EXPECT_TRUE(s.IsSingleton());
  EXPECT_EQ(s.single(), V("c1"));
}

TEST(ValueSetTest, DuplicatesCollapse) {
  ValueSet s = Strings({"b", "a", "b", "a"});
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], V("a"));
  EXPECT_EQ(s[1], V("b"));
}

TEST(ValueSetTest, ElementsSortedRegardlessOfInsertionOrder) {
  ValueSet s;
  s.Insert(V("c3"));
  s.Insert(V("c1"));
  s.Insert(V("c2"));
  EXPECT_EQ(s.values(),
            (std::vector<Value>{V("c1"), V("c2"), V("c3")}));
}

TEST(ValueSetTest, InsertReportsNovelty) {
  ValueSet s;
  EXPECT_TRUE(s.Insert(V("x")));
  EXPECT_FALSE(s.Insert(V("x")));
  EXPECT_EQ(s.size(), 1u);
}

TEST(ValueSetTest, EraseReportsPresence) {
  ValueSet s = Strings({"a", "b"});
  EXPECT_TRUE(s.Erase(V("a")));
  EXPECT_FALSE(s.Erase(V("a")));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Contains(V("b")));
}

TEST(ValueSetTest, Contains) {
  ValueSet s = Strings({"c1", "c2"});
  EXPECT_TRUE(s.Contains(V("c1")));
  EXPECT_FALSE(s.Contains(V("c3")));
}

TEST(ValueSetTest, Union) {
  EXPECT_EQ(Strings({"a", "b"}).Union(Strings({"b", "c"})),
            Strings({"a", "b", "c"}));
  EXPECT_EQ(ValueSet().Union(Strings({"x"})), Strings({"x"}));
}

TEST(ValueSetTest, Intersect) {
  EXPECT_EQ(Strings({"a", "b", "c"}).Intersect(Strings({"b", "c", "d"})),
            Strings({"b", "c"}));
  EXPECT_TRUE(Strings({"a"}).Intersect(Strings({"b"})).empty());
}

TEST(ValueSetTest, Difference) {
  EXPECT_EQ(Strings({"a", "b", "c"}).Difference(Strings({"b"})),
            Strings({"a", "c"}));
  EXPECT_EQ(Strings({"a"}).Difference(Strings({"a"})), ValueSet());
}

TEST(ValueSetTest, SubsetRelation) {
  EXPECT_TRUE(Strings({"a"}).IsSubsetOf(Strings({"a", "b"})));
  EXPECT_TRUE(ValueSet().IsSubsetOf(Strings({"a"})));
  EXPECT_TRUE(Strings({"a", "b"}).IsSubsetOf(Strings({"a", "b"})));
  EXPECT_FALSE(Strings({"a", "c"}).IsSubsetOf(Strings({"a", "b"})));
}

TEST(ValueSetTest, Disjointness) {
  EXPECT_TRUE(Strings({"a", "b"}).IsDisjointFrom(Strings({"c", "d"})));
  EXPECT_FALSE(Strings({"a", "b"}).IsDisjointFrom(Strings({"b", "c"})));
  EXPECT_TRUE(ValueSet().IsDisjointFrom(Strings({"a"})));
}

TEST(ValueSetTest, SetEqualityIgnoresConstructionOrder) {
  EXPECT_EQ(Strings({"c2", "c1"}), Strings({"c1", "c2"}));
  EXPECT_NE(Strings({"c1"}), Strings({"c1", "c2"}));
}

TEST(ValueSetTest, LexicographicOrdering) {
  EXPECT_LT(Strings({"a"}), Strings({"a", "b"}));
  EXPECT_LT(Strings({"a", "b"}), Strings({"b"}));
}

TEST(ValueSetTest, HashConsistentWithEquality) {
  EXPECT_EQ(Strings({"b", "a"}).Hash(), Strings({"a", "b"}).Hash());
  EXPECT_NE(Strings({"a"}).Hash(), Strings({"a", "b"}).Hash());
}

TEST(ValueSetTest, ToStringPaperStyle) {
  EXPECT_EQ(Strings({"s2", "s3"}).ToString(), "s2,s3");
  EXPECT_EQ(ValueSet(V("s1")).ToString(), "s1");
  EXPECT_EQ(ValueSet().ToString(), "");
}

TEST(ValueSetTest, MixedTypesSortByTypeTag) {
  ValueSet s{Value::String("a"), Value::Int(5)};
  EXPECT_EQ(s[0], Value::Int(5));
  EXPECT_EQ(s[1], Value::String("a"));
}

}  // namespace
}  // namespace nf2
