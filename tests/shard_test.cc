// Tests for the sharded engine subsystem (src/shard/, DESIGN.md §13):
// shard-map unit tests, scatter-gather routing checked reply-by-reply
// against a single-engine oracle fed the same statement stream, merge
// edge cases (mid-batch errors, DDL rollback), N=1 byte-interop, the
// EXPLAIN goldens for index_range_scan and scatter plans, and the
// 8-session / 4-shard torture test whose final state must be
// bit-identical to a single-engine replay.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/nest.h"
#include "engine/database.h"
#include "nfrql/parser.h"
#include "server/session.h"
#include "shard/merge.h"
#include "shard/router.h"
#include "shard/shard_map.h"
#include "storage/serde.h"
#include "util/string_util.h"

namespace nf2 {
namespace {

using server::ClientSession;
using server::Session;
using server::SessionManager;

class ShardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = (std::filesystem::temp_directory_path() /
             ("nf2_shard_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name())))
                .string();
    RemoveDirs();
  }
  void TearDown() override { RemoveDirs(); }

  void RemoveDirs() {
    std::filesystem::remove_all(base_);
    std::filesystem::remove_all(base_ + "_oracle");
  }

  /// Opens an N-shard router at base_.
  std::unique_ptr<shard::ShardRouter> OpenRouter(size_t shards) {
    shard::ShardRouter::Options options;
    options.shards = shards;
    auto router = shard::ShardRouter::Open(base_, options);
    EXPECT_TRUE(router.ok()) << router.status();
    return router.ok() ? *std::move(router) : nullptr;
  }

  /// Opens the single-engine oracle at base_ + "_oracle".
  void OpenOracle() {
    auto db = Database::Open(base_ + "_oracle");
    ASSERT_TRUE(db.ok()) << db.status();
    oracle_db_ = *std::move(db);
    oracle_sessions_ = std::make_unique<SessionManager>(oracle_db_.get());
    oracle_ = oracle_sessions_->NewSession();
  }

  std::string base_;
  std::unique_ptr<Database> oracle_db_;
  std::unique_ptr<SessionManager> oracle_sessions_;
  std::unique_ptr<Session> oracle_;
};

// ---------------------------------------------------------------------
// shard_map
// ---------------------------------------------------------------------

TEST(ShardMapTest, PartitionAttrPrefersKeyLikeAttribute) {
  // Def. 7: a key-like attribute is a single-attribute superkey. With
  // FD Course -> Student declared on (Student, Course), Course is the
  // first key-like attribute; without FDs the fallback is position 0.
  RelationInfo info;
  info.name = "takes";
  info.schema = Schema::OfStrings({"Student", "Course"});
  info.nest_order = {0, 1};
  EXPECT_EQ(shard::PartitionAttr(info), 0u);
  info.fds.push_back({{1}, {0}});  // Course -> Student.
  EXPECT_EQ(shard::PartitionAttr(info), 1u);
}

TEST(ShardMapTest, ShardOfIsStableAndBounded) {
  const Value v = Value::String("alice");
  const size_t first = shard::ShardOf(v, 4);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(shard::ShardOf(v, 4), first);
  }
  EXPECT_EQ(shard::ShardOf(v, 1), 0u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_LT(shard::ShardOf(Value::Int(i), 5), 5u);
  }
  // The hash is value-based, not pointer- or seed-based: equal values
  // always land on the same shard.
  EXPECT_EQ(shard::ShardOf(Value::String("bob"), 7),
            shard::ShardOf(Value::String("bob"), 7));
}

TEST(ShardMapTest, MarkerPinsShardCount) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "nf2_shard_marker").string();
  std::filesystem::remove_all(dir);
  Env* env = Env::Default();
  auto first = shard::EnsureShardMarker(env, dir, 4);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(*first, 4u);
  auto again = shard::EnsureShardMarker(env, dir, 4);
  ASSERT_TRUE(again.ok());
  auto mismatch = shard::EnsureShardMarker(env, dir, 2);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kFailedPrecondition);
  auto zero = shard::EnsureShardMarker(env, dir, 0);
  EXPECT_EQ(zero.status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(env->WriteFileAtomic(dir + "/SHARDS", "bogus\n").ok());
  auto corrupt = shard::EnsureShardMarker(env, dir, 4);
  EXPECT_EQ(corrupt.status().code(), StatusCode::kInternal);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Router vs single-engine oracle
// ---------------------------------------------------------------------

/// The statement battery both engines replay. K is key-like
/// (FD K -> V, G), so it is the partition attribute; V is INT for the
/// arithmetic aggregates; G induces small groups.
std::vector<std::string> OracleBattery() {
  std::vector<std::string> s;
  s.push_back(
      "CREATE RELATION r (K STRING, V INT, G STRING) FD K -> V, G");
  for (int i = 0; i < 12; ++i) {
    s.push_back(StrCat("INSERT INTO r VALUES (k", i, ", ", (i * 7) % 19,
                       ", g", i % 3, ")"));
  }
  s.push_back("INSERT INTO r VALUES (k90, 90, g0), (k91, 91, g1)");
  // Point reads: equality on the partition attribute.
  s.push_back("SELECT * FROM r WHERE K = k3");
  s.push_back("SELECT COUNT(*) FROM r WHERE K = k3");
  // Scattered reads across every merge path.
  s.push_back("SELECT * FROM r");
  s.push_back("SELECT G FROM r");
  s.push_back("SELECT * FROM r ORDER BY V");
  s.push_back("SELECT * FROM r ORDER BY V DESC LIMIT 5");
  s.push_back("SELECT G FROM r ORDER BY G");
  s.push_back("SELECT K FROM r ORDER BY V LIMIT 4");
  s.push_back("SELECT COUNT(*) FROM r");
  s.push_back("SELECT COUNT(K) FROM r");   // DISTINCT on partition attr.
  s.push_back("SELECT COUNT(G) FROM r");   // DISTINCT on a shared attr.
  s.push_back("SELECT SUM(V) FROM r");
  s.push_back("SELECT MIN(V) FROM r");
  s.push_back("SELECT MAX(K) FROM r");
  s.push_back("SELECT COUNT(*) FROM r WHERE G = g1");
  s.push_back("SELECT G, COUNT(*) FROM r GROUP BY G");
  s.push_back("SELECT G, COUNT(K), SUM(V), MIN(V), MAX(V) FROM r GROUP BY G");
  s.push_back("SELECT G, COUNT(G) FROM r GROUP BY G");
  s.push_back("SELECT G, SUM(V) FROM r GROUP BY G ORDER BY G DESC");
  // Range predicates (index_range_scan under the hood).
  s.push_back("SELECT * FROM r WHERE V >= 5");
  s.push_back("SELECT * FROM r WHERE V > 3 ORDER BY V");
  s.push_back("SELECT COUNT(*) FROM r WHERE V <= 40");
  // Mutations: point, scatter, and VALUES form.
  s.push_back("UPDATE r SET V = 100 WHERE K = k5");
  s.push_back("UPDATE r SET G = g9 WHERE V = 100");
  s.push_back("DELETE FROM r WHERE K = k7");
  s.push_back("DELETE FROM r WHERE V > 89");
  s.push_back("DELETE FROM r VALUES (k0, 0, g0)");
  s.push_back("SELECT * FROM r ORDER BY K");
  // Recomposed statement surfaces.
  s.push_back("SHOW r");
  s.push_back("DESCRIBE r");
  s.push_back("NEST r ON G");
  s.push_back("UNNEST r ON V");
  s.push_back("LIST");
  s.push_back("CHECKPOINT");
  // Transactions: fan-out BEGIN, read-your-own-writes, COMMIT.
  s.push_back("BEGIN");
  s.push_back("INSERT INTO r VALUES (k50, 50, g2)");
  s.push_back("SELECT * FROM r ORDER BY K");
  s.push_back("SELECT COUNT(*) FROM r");
  s.push_back("COMMIT");
  s.push_back("SELECT * FROM r ORDER BY K");
  // Errors must carry the single-engine text.
  s.push_back("SELECT * FROM nope");
  s.push_back("INSERT INTO nope VALUES (x)");
  s.push_back("COMMIT");
  // DDL round-trip.
  s.push_back("DROP RELATION r");
  s.push_back("LIST");
  return s;
}

void CompareAgainstOracle(ClientSession* routed, Session* oracle,
                          const std::vector<std::string>& battery) {
  for (const std::string& stmt : battery) {
    Result<std::string> got = routed->Execute(stmt);
    Result<std::string> want = oracle->Execute(stmt);
    ASSERT_EQ(got.ok(), want.ok())
        << stmt << "\n  router: "
        << (got.ok() ? *got : got.status().ToString()) << "\n  oracle: "
        << (want.ok() ? *want : want.status().ToString());
    if (got.ok()) {
      EXPECT_EQ(*got, *want) << stmt;
    } else {
      EXPECT_EQ(got.status().ToString(), want.status().ToString()) << stmt;
    }
  }
}

TEST_F(ShardTest, ScatterGatherMatchesSingleEngineReplyByReply) {
  auto router = OpenRouter(3);
  ASSERT_NE(router, nullptr);
  OpenOracle();
  auto session = router->NewClientSession();
  CompareAgainstOracle(session.get(), oracle_.get(), OracleBattery());
}

TEST_F(ShardTest, RowsActuallyDistributeAcrossShards) {
  auto router = OpenRouter(4);
  ASSERT_NE(router, nullptr);
  auto session = router->NewClientSession();
  ASSERT_TRUE(session
                  ->Execute("CREATE RELATION d (K STRING, V INT) FD K -> V")
                  .ok());
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(
        session->Execute(StrCat("INSERT INTO d VALUES (key", i, ", ", i, ")"))
            .ok());
  }
  size_t populated = 0;
  size_t total = 0;
  for (size_t i = 0; i < router->shard_count(); ++i) {
    auto rel = router->shard_db(i)->Relation("d");
    ASSERT_TRUE(rel.ok());
    total += (*rel)->Expand().size();
    if ((*rel)->size() > 0) ++populated;
  }
  EXPECT_EQ(total, 32u);
  EXPECT_GE(populated, 2u) << "hash partitioning left the data on one shard";
}

TEST_F(ShardTest, UpdateOfPartitionAttributeIsRejected) {
  auto router = OpenRouter(2);
  ASSERT_NE(router, nullptr);
  auto session = router->NewClientSession();
  ASSERT_TRUE(session
                  ->Execute("CREATE RELATION u (K STRING, V INT) FD K -> V")
                  .ok());
  ASSERT_TRUE(session->Execute("INSERT INTO u VALUES (a, 1)").ok());
  auto res = session->Execute("UPDATE u SET K = b WHERE V = 1");
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kUnimplemented);
}

// ---------------------------------------------------------------------
// Merge edge cases
// ---------------------------------------------------------------------

TEST_F(ShardTest, MidBatchErrorLeavesOtherRepliesIntact) {
  auto router = OpenRouter(3);
  ASSERT_NE(router, nullptr);
  auto session = router->NewClientSession();
  ASSERT_TRUE(session
                  ->Execute("CREATE RELATION b (K STRING, V INT) FD K -> V")
                  .ok());
  std::vector<std::string> batch = {
      "INSERT INTO b VALUES (a, 1)",
      "INSERT INTO missing VALUES (x)",  // Fails: unknown relation.
      "INSERT INTO b VALUES (c, 3)",
      "SELECT COUNT(*) FROM b",
  };
  std::vector<Result<std::string>> results = session->ExecuteBatch(batch);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(*results[0], "inserted 1 tuple(s) into b");
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(results[2].ok());
  ASSERT_TRUE(results[3].ok());
  EXPECT_EQ(*results[3], "2");
}

TEST_F(ShardTest, MidBatchBusyLeavesOtherRepliesIntact) {
  auto router = OpenRouter(3);
  ASSERT_NE(router, nullptr);
  auto writer = router->NewClientSession();
  auto holder = router->NewClientSession();
  ASSERT_TRUE(writer
                  ->Execute("CREATE RELATION busy (K STRING, V INT) "
                            "FD K -> V")
                  .ok());
  ASSERT_TRUE(writer->Execute("INSERT INTO busy VALUES (a, 1)").ok());
  // The holder's fan-out BEGIN claims the transaction slot on every
  // shard; the writer's mutations must bounce while its reads proceed.
  ASSERT_TRUE(holder->Execute("BEGIN").ok());
  std::vector<Result<std::string>> results = writer->ExecuteBatch({
      "SELECT COUNT(*) FROM busy",
      "INSERT INTO busy VALUES (b, 2)",  // Bounces: slot taken.
      "SELECT COUNT(*) FROM busy",
  });
  ASSERT_EQ(results.size(), 3u);
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ(*results[0], "1");
  EXPECT_FALSE(results[1].ok());
  ASSERT_TRUE(results[2].ok());
  EXPECT_EQ(*results[2], "1");
  ASSERT_TRUE(holder->Execute("ROLLBACK").ok());
  EXPECT_TRUE(writer->Execute("INSERT INTO busy VALUES (b, 2)").ok());
}

TEST_F(ShardTest, DdlRollbackOnPartialCreateFailure) {
  auto router = OpenRouter(3);
  ASSERT_NE(router, nullptr);
  // Plant a conflicting relation directly on the LAST shard: the
  // router's CREATE fan-out succeeds on shards 0 and 1, fails on 2,
  // and must roll the first two back.
  ASSERT_TRUE(router->shard_db(2)
                  ->CreateRelation("c", Schema::OfStrings({"X"}), {0})
                  .ok());
  auto session = router->NewClientSession();
  auto res = session->Execute("CREATE RELATION c (K STRING, V INT)");
  ASSERT_FALSE(res.ok());
  EXPECT_FALSE(router->shard_db(0)->Info("c").ok())
      << "shard 0 kept the half-created relation";
  EXPECT_FALSE(router->shard_db(1)->Info("c").ok())
      << "shard 1 kept the half-created relation";
  // Clear the planted conflict; the fan-out then succeeds everywhere.
  ASSERT_TRUE(router->shard_db(2)->DropRelation("c").ok());
  EXPECT_TRUE(session->Execute("CREATE RELATION c (K STRING, V INT)").ok());
  for (size_t i = 0; i < router->shard_count(); ++i) {
    EXPECT_TRUE(router->shard_db(i)->Info("c").ok()) << "shard " << i;
  }
}

TEST_F(ShardTest, SingleShardInteropIsByteIdentical) {
  auto router = OpenRouter(1);
  ASSERT_NE(router, nullptr);
  OpenOracle();
  auto session = router->NewClientSession();
  CompareAgainstOracle(session.get(), oracle_.get(), OracleBattery());
  // Meta commands go through the router even with one shard (so
  // `\metrics` includes the router-level registry — replication lag on
  // a 1-shard follower lives there): `\shards` reports the real
  // layout instead of forwarding to the engine's "no shards" reply.
  auto shards = session->Execute("\\shards");
  ASSERT_TRUE(shards.ok());
  EXPECT_NE(shards->find("1 shard(s)"), std::string::npos) << *shards;
}

// ---------------------------------------------------------------------
// EXPLAIN goldens
// ---------------------------------------------------------------------

TEST_F(ShardTest, ExplainShowsIndexRangeScanForRangePredicates) {
  OpenOracle();
  ASSERT_TRUE(oracle_
                  ->Execute("CREATE RELATION e (K STRING, V INT) FD K -> V")
                  .ok());
  ASSERT_TRUE(oracle_->Execute("INSERT INTO e VALUES (a, 1), (b, 5)").ok());
  auto plan = oracle_->Execute("EXPLAIN SELECT * FROM e WHERE V >= 3");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("index_range_scan(e: V >= 3)"), std::string::npos)
      << *plan;
  auto bounded =
      oracle_->Execute("EXPLAIN SELECT * FROM e WHERE V > 1 AND V <= 5");
  ASSERT_TRUE(bounded.ok());
  EXPECT_NE(bounded->find("index_range_scan(e: V > 1, V <= 5)"),
            std::string::npos)
      << *bounded;
}

TEST_F(ShardTest, ExplainAnnotatesScatterAndForwardsPointPlans) {
  auto router = OpenRouter(3);
  ASSERT_NE(router, nullptr);
  auto session = router->NewClientSession();
  ASSERT_TRUE(session
                  ->Execute("CREATE RELATION x (K STRING, V INT) FD K -> V")
                  .ok());
  ASSERT_TRUE(session->Execute("INSERT INTO x VALUES (a, 1)").ok());
  auto scattered = session->Execute("EXPLAIN SELECT * FROM x");
  ASSERT_TRUE(scattered.ok());
  EXPECT_NE(scattered->find("scatter: 3 shard(s), merged at router"),
            std::string::npos)
      << *scattered;
  auto point = session->Execute("EXPLAIN SELECT * FROM x WHERE K = a");
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point->find("scatter:"), std::string::npos) << *point;
  auto profile_scatter = session->Execute("PROFILE SELECT * FROM x");
  ASSERT_FALSE(profile_scatter.ok());
  EXPECT_EQ(profile_scatter.status().code(), StatusCode::kUnimplemented);
}

// ---------------------------------------------------------------------
// \shards meta command
// ---------------------------------------------------------------------

TEST_F(ShardTest, ShardsMetaCommandReportsPerShardState) {
  auto router = OpenRouter(3);
  ASSERT_NE(router, nullptr);
  auto session = router->NewClientSession();
  ASSERT_TRUE(session
                  ->Execute("CREATE RELATION m (K STRING, V INT) FD K -> V")
                  .ok());
  auto out = session->Execute("\\shards");
  ASSERT_TRUE(out.ok()) << out.status();
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NE(out->find(StrCat("shard-", i, ": 1 relation(s), wal ")),
              std::string::npos)
        << *out;
  }
  EXPECT_NE(out->find("last checkpoint never"), std::string::npos) << *out;
  EXPECT_NE(out->find("3 shard(s)"), std::string::npos) << *out;
  ASSERT_TRUE(session->Execute("CHECKPOINT").ok());
  out = session->Execute("\\shards");
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->find("last checkpoint never"), std::string::npos) << *out;
  // Per-shard engine metrics carry shard labels in Prometheus form.
  auto prom = session->Execute("\\metrics prom");
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom->find("shard=\"0\""), std::string::npos);
  EXPECT_NE(prom->find("nf2_router_shards"), std::string::npos);
}

// ---------------------------------------------------------------------
// Torture: 4 shards, 8 sessions, bit-identical to a single-engine
// replay of the same (commuting) write stream.
// ---------------------------------------------------------------------

TEST_F(ShardTest, TortureFourShardsEightSessionsMatchesOracleBitForBit) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kRounds = 60;

  auto router = OpenRouter(4);
  ASSERT_NE(router, nullptr);
  {
    auto admin = router->NewClientSession();
    ASSERT_TRUE(
        admin
            ->Execute("CREATE RELATION takes (Student STRING, Course STRING, "
                      "Club STRING) FD Student -> Course, Club")
            .ok());
  }

  // Each writer owns a disjoint key range, so the inserts and deletes
  // commute and the final state is interleaving-independent — the
  // oracle argument from concurrency_test, extended across shards.
  std::vector<std::vector<std::string>> streams(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kRounds; ++i) {
      streams[w].push_back(StrCat("INSERT INTO takes VALUES (w", w, "s", i,
                                  ", c", (i * 7) % 5, ", k", i % 3, ")"));
      if (i % 5 == 4) {
        streams[w].push_back(StrCat("DELETE FROM takes WHERE Student = w", w,
                                    "s", i - 2));
      }
    }
  }

  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  std::atomic<int> write_errors{0};
  std::atomic<int> read_errors{0};
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w]() {
      auto session = router->NewClientSession();
      for (const std::string& stmt : streams[w]) {
        if (!session->Execute(stmt).ok()) ++write_errors;
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r]() {
      auto session = router->NewClientSession();
      while (!stop.load(std::memory_order_relaxed)) {
        const char* queries[] = {
            "SELECT COUNT(*) FROM takes",
            "SELECT * FROM takes ORDER BY Student LIMIT 10",
            "SELECT Club, COUNT(*) FROM takes GROUP BY Club",
            "SHOW takes",
        };
        if (!session->Execute(queries[r % 4]).ok()) ++read_errors;
      }
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_relaxed);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  EXPECT_EQ(write_errors.load(), 0);
  EXPECT_EQ(read_errors.load(), 0);

  // Oracle: replay every writer's stream sequentially into one engine.
  OpenOracle();
  ASSERT_TRUE(
      oracle_
          ->Execute("CREATE RELATION takes (Student STRING, Course STRING, "
                    "Club STRING) FD Student -> Course, Club")
          .ok());
  for (const auto& stream : streams) {
    for (const std::string& stmt : stream) {
      ASSERT_TRUE(oracle_->Execute(stmt).ok()) << stmt;
    }
  }

  // Rendered surfaces agree...
  auto session = router->NewClientSession();
  for (const char* probe :
       {"SHOW takes", "SELECT * FROM takes ORDER BY Student",
        "SELECT COUNT(*) FROM takes", "DESCRIBE takes",
        "SELECT Club, COUNT(*) FROM takes GROUP BY Club"}) {
    auto got = session->Execute(probe);
    auto want = oracle_->Execute(probe);
    ASSERT_TRUE(got.ok() && want.ok()) << probe;
    EXPECT_EQ(*got, *want) << probe;
  }

  // ...and the recomposed relation is bit-identical: concatenate every
  // shard's R*, re-nest under the declared order (Theorem 2 makes the
  // canonical form unique), and compare serialized bytes against the
  // oracle's relation put through the same canonicalization (the live
  // NfrRelation keeps arrival order; only the canonical form is
  // unique).
  auto oracle_rel = oracle_db_->Relation("takes");
  ASSERT_TRUE(oracle_rel.ok());
  auto oracle_info = oracle_db_->Info("takes");
  ASSERT_TRUE(oracle_info.ok());
  std::vector<FlatTuple> rows;
  for (size_t i = 0; i < router->shard_count(); ++i) {
    auto rel = router->shard_db(i)->Relation("takes");
    ASSERT_TRUE(rel.ok());
    FlatRelation expanded = (*rel)->Expand();
    for (const FlatTuple& t : expanded.tuples()) rows.push_back(t);
  }
  NfrRelation merged = CanonicalForm(
      FlatRelation((*oracle_info)->schema, std::move(rows)),
      (*oracle_info)->nest_order);
  BufferWriter got_bytes;
  EncodeNfrRelation(merged, &got_bytes);
  NfrRelation oracle_canonical = CanonicalForm(
      (*oracle_rel)->Expand(), (*oracle_info)->nest_order);
  BufferWriter want_bytes;
  EncodeNfrRelation(oracle_canonical, &want_bytes);
  EXPECT_EQ(got_bytes.data(), want_bytes.data())
      << "recomposed shard union differs from the single-engine oracle";
}

}  // namespace
}  // namespace nf2
