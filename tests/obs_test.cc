// Observability layer: metrics registry semantics (counters, gauges,
// power-of-two latency histograms), snapshot lookups, text renderers,
// trace span trees, and the §4 mirror invariant (registry counters stay
// bit-identical to CanonicalRelation's UpdateStats).

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/update.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tests/test_util.h"

namespace nf2 {
namespace {

TEST(CounterTest, IncrementAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
  g.Set(-5);
  EXPECT_EQ(g.value(), -5);
}

TEST(HistogramTest, BucketIndexIsPowerOfTwo) {
  // Bucket 0 absorbs [0, 2); bucket i holds [2^i, 2^(i+1)).
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 0u);
  EXPECT_EQ(Histogram::BucketIndex(2), 1u);
  EXPECT_EQ(Histogram::BucketIndex(3), 1u);
  EXPECT_EQ(Histogram::BucketIndex(4), 2u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 9u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 10u);
  // Everything past the last boundary lands in the final bucket.
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<uint64_t>::max()),
            Histogram::kBuckets - 1);
}

TEST(HistogramTest, BucketUpperBounds) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 2u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 4u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 2048u);
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kBuckets - 1),
            std::numeric_limits<uint64_t>::max());
}

TEST(HistogramTest, ObserveCountSumBuckets) {
  Histogram h;
  h.Observe(1);
  h.Observe(3);
  h.Observe(3);
  h.Observe(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1007u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(9), 1u);
}

TEST(RegistryTest, HandlesAreStableAndShared) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("nf2_test_total", "help once");
  Counter* b = reg.GetCounter("nf2_test_total", "ignored second help");
  EXPECT_EQ(a, b);
  a->Increment(5);
  EXPECT_EQ(reg.Snapshot().counter("nf2_test_total"), 5u);
  // Distinct kinds under distinct names never alias.
  EXPECT_NE(static_cast<void*>(reg.GetGauge("nf2_test_gauge")),
            static_cast<void*>(a));
}

TEST(RegistryTest, SnapshotLookups) {
  MetricsRegistry reg;
  reg.GetCounter("c")->Increment(3);
  reg.GetGauge("g")->Set(-7);
  reg.GetHistogram("h")->Observe(100);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counter("c"), 3u);
  EXPECT_EQ(snap.gauge("g"), -7);
  ASSERT_NE(snap.histogram("h"), nullptr);
  EXPECT_EQ(snap.histogram("h")->count, 1u);
  EXPECT_EQ(snap.histogram("h")->sum, 100u);
  // Absent names are well-defined, not fatal.
  EXPECT_EQ(snap.counter("absent"), 0u);
  EXPECT_EQ(snap.gauge("absent"), 0);
  EXPECT_EQ(snap.histogram("absent"), nullptr);
}

TEST(RegistryTest, HistogramSnapshotStats) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("lat_ns");
  for (uint64_t i = 0; i < 100; ++i) h->Observe(10);  // Bucket [8,16).
  h->Observe(1 << 20);  // One outlier.
  MetricsSnapshot snap = reg.Snapshot();
  const MetricsSnapshot::HistogramValue* v = snap.histogram("lat_ns");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->count, 101u);
  EXPECT_NEAR(v->Mean(), (100 * 10 + (1 << 20)) / 101.0, 1e-9);
  // p50 falls in the dense bucket, p99.9 in the outlier's.
  EXPECT_EQ(v->ApproxQuantile(0.5), 16u);
  EXPECT_EQ(v->ApproxQuantile(0.999), uint64_t{1} << 21);
}

TEST(RegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      // Registration from all threads concurrently must converge on one
      // counter; the hot-path adds must not lose updates.
      Counter* c = reg.GetCounter("nf2_contended_total");
      Histogram* h = reg.GetHistogram("nf2_contended_ns");
      for (int i = 0; i < kPerThread; ++i) {
        c->Increment();
        h->Observe(static_cast<uint64_t>(i % 64));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counter("nf2_contended_total"),
            uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(snap.histogram("nf2_contended_ns")->count,
            uint64_t{kThreads} * kPerThread);
}

TEST(RegistryTest, ToStringRendersUnitsByName) {
  MetricsRegistry reg;
  reg.GetCounter("nf2_things_total")->Increment(7);
  reg.GetHistogram("nf2_batch")->Observe(4);
  reg.GetHistogram("nf2_lat_ns")->Observe(2'500'000);  // 2.5 ms.
  std::string text = reg.ToString();
  EXPECT_NE(text.find("nf2_things_total 7"), std::string::npos);
  // Only *_ns histograms render as durations.
  EXPECT_NE(text.find("nf2_batch count=1 mean=4"), std::string::npos);
  EXPECT_NE(text.find("nf2_lat_ns count=1 mean=2.50ms"), std::string::npos);
}

TEST(RegistryTest, PrometheusTextFormat) {
  MetricsRegistry reg;
  reg.GetCounter("nf2_ops_total", "operations")->Increment(9);
  reg.GetGauge("nf2_depth")->Set(3);
  Histogram* h = reg.GetHistogram("nf2_wait_ns", "wait time");
  h->Observe(1);
  h->Observe(5);
  std::string text = reg.ToPrometheusText();
  EXPECT_NE(text.find("# HELP nf2_ops_total operations"), std::string::npos);
  EXPECT_NE(text.find("# TYPE nf2_ops_total counter"), std::string::npos);
  EXPECT_NE(text.find("nf2_ops_total 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE nf2_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("nf2_depth 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE nf2_wait_ns histogram"), std::string::npos);
  // Cumulative ladder: the le="2" bucket holds 1, le="8" holds both,
  // and the mandatory +Inf equals the total count.
  EXPECT_NE(text.find("nf2_wait_ns_bucket{le=\"2\"} 1"), std::string::npos);
  EXPECT_NE(text.find("nf2_wait_ns_bucket{le=\"8\"} 2"), std::string::npos);
  EXPECT_NE(text.find("nf2_wait_ns_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("nf2_wait_ns_sum 6"), std::string::npos);
  EXPECT_NE(text.find("nf2_wait_ns_count 2"), std::string::npos);
}

TEST(MetricHandlesTest, NullRegistryYieldsNoopHandles) {
  BufferPoolMetrics pool = BufferPoolMetrics::ForRegistry(nullptr);
  EXPECT_EQ(pool.hits, nullptr);
  EXPECT_EQ(pool.writebacks, nullptr);
  UpdatePathMetrics upd = UpdatePathMetrics::ForRegistry(nullptr);
  EXPECT_EQ(upd.compositions, nullptr);
  EXPECT_EQ(upd.recons_ns, nullptr);
}

TEST(MetricHandlesTest, ForRegistryBindsCanonicalNames) {
  MetricsRegistry reg;
  BufferPoolMetrics pool = BufferPoolMetrics::ForRegistry(&reg);
  ASSERT_NE(pool.misses, nullptr);
  pool.misses->Increment(2);
  UpdatePathMetrics upd = UpdatePathMetrics::ForRegistry(&reg);
  ASSERT_NE(upd.compositions, nullptr);
  upd.compositions->Increment(3);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counter("nf2_pool_misses_total"), 2u);
  EXPECT_EQ(snap.counter("nf2_compo_total"), 3u);
}

TEST(TraceTest, SpansNestInStackOrder) {
  Trace trace;
  {
    TraceSpan outer(&trace, "outer");
    outer.AddAttr("rows_in", 2);
    {
      TraceSpan inner(&trace, "inner");
      inner.AddAttr("rows_out", 1);
    }
    { TraceSpan sibling(&trace, "sibling"); }
  }
  const SpanNode& root = trace.root();
  ASSERT_EQ(root.children.size(), 1u);
  const SpanNode& outer = *root.children[0];
  EXPECT_EQ(outer.name, "outer");
  ASSERT_EQ(outer.attrs.size(), 1u);
  EXPECT_EQ(outer.attrs[0].first, "rows_in");
  EXPECT_EQ(outer.attrs[0].second, 2);
  ASSERT_EQ(outer.children.size(), 2u);
  EXPECT_EQ(outer.children[0]->name, "inner");
  EXPECT_EQ(outer.children[1]->name, "sibling");
}

TEST(TraceTest, PlanOnlyRenderIsDeterministic) {
  Trace trace;
  {
    TraceSpan op(&trace, "select(r)");
    op.AddAttr("rows_out", 3);
    { TraceSpan scan(&trace, "scan"); }
    { TraceSpan project(&trace, "project"); }
  }
  // kPlanOnly suppresses wall times, so the text is stable.
  EXPECT_EQ(trace.Render(TraceRender::kPlanOnly),
            "select(r) rows_out=3\n"
            "├─ scan\n"
            "└─ project\n");
  // The timed render carries the same shape plus bracketed durations.
  std::string timed = trace.Render(TraceRender::kWithTimes);
  EXPECT_NE(timed.find("select(r) ["), std::string::npos);
  EXPECT_NE(timed.find("rows_out=3"), std::string::npos);
}

TEST(TraceTest, NullTraceSpanIsHistogramProbe) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("probe_ns");
  {
    TraceSpan span(nullptr, "untraced", h);
    span.AddAttr("ignored", 1);  // Must be a harmless no-op.
    EXPECT_GE(span.ElapsedNs(), 0u);
  }
  EXPECT_EQ(h->count(), 1u);
  // Fully null spans cost nothing and crash nothing.
  { TraceSpan span(nullptr, "noop"); }
}

// The engine invariant the EXPLAIN/PROFILE surface relies on: every
// ++stats_ in the §4 update path also bumps its registry mirror, so the
// database-wide counters are bit-identical to the per-relation
// UpdateStats — not merely close.
TEST(UpdateMirrorTest, RegistryCountersMatchUpdateStatsExactly) {
  MetricsRegistry reg;
  CanonicalRelation rel(Schema::OfStrings({"E1", "E2", "E3"}), {0, 1, 2});
  rel.set_metrics(UpdatePathMetrics::ForRegistry(&reg));

  Rng rng(7);
  FlatRelation flat = RandomFlatRelation(&rng, 3, 4, 60);
  for (const FlatTuple& t : flat.tuples()) {
    ASSERT_TRUE(rel.Insert(t).ok());
  }
  // Delete every third tuple to drive the unnest/recons paths too.
  for (size_t i = 0; i < flat.size(); i += 3) {
    ASSERT_TRUE(rel.Delete(flat.tuple(i)).ok());
  }

  const UpdateStats& stats = rel.stats();
  EXPECT_GT(stats.compositions, 0u);
  EXPECT_GT(stats.decompositions, 0u);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counter("nf2_compo_total"), stats.compositions);
  EXPECT_EQ(snap.counter("nf2_unnest_total"), stats.decompositions);
  EXPECT_EQ(snap.counter("nf2_recons_total"), stats.recons_calls);
  EXPECT_EQ(snap.counter("nf2_candt_scans_total"), stats.candidate_scans);
  EXPECT_EQ(snap.counter("nf2_candt_ns_total"), stats.find_candidate_ns);
  EXPECT_EQ(snap.counter("nf2_recons_ns_total"), stats.recons_ns);
}

}  // namespace
}  // namespace nf2
