#include "core/value_dictionary.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/value.h"
#include "core/value_set.h"
#include "storage/serde.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace nf2 {
namespace {

/// A random atomic Value drawn from every kind, including kSet atoms
/// (sets-as-values must intern like any other atom).
Value RandomAtom(Rng* rng) {
  switch (rng->NextBelow(6)) {
    case 0:
      return Value::Null();
    case 1:
      return Value::Bool(rng->NextBelow(2) == 0);
    case 2:
      return Value::Int(static_cast<int64_t>(rng->NextBelow(40)) - 20);
    case 3:
      return Value::Double(static_cast<double>(rng->NextBelow(100)) / 8.0);
    case 4:
      return Value::String(StrCat("s", rng->NextBelow(30)));
    default: {
      std::vector<Value> inner;
      size_t n = 1 + rng->NextBelow(3);
      for (size_t i = 0; i < n; ++i) {
        inner.push_back(
            Value::Int(static_cast<int64_t>(rng->NextBelow(10))));
      }
      return Value::SetOf(std::move(inner));
    }
  }
}

ValueSet RandomValueSet(Rng* rng) {
  ValueSet out;
  size_t n = 1 + rng->NextBelow(8);
  for (size_t i = 0; i < n; ++i) {
    out = out.Union(ValueSet(RandomAtom(rng)));
  }
  return out;
}

TEST(ValueDictionaryTest, InternIsIdempotent) {
  ValueDictionary dict;
  ValueId a = dict.Intern(V("x"));
  ValueId b = dict.Intern(V("y"));
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern(V("x")), a);
  EXPECT_EQ(dict.Intern(V("y")), b);
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.value(a), V("x"));
  EXPECT_EQ(dict.value(b), V("y"));
}

TEST(ValueDictionaryTest, FindDoesNotIntern) {
  ValueDictionary dict;
  EXPECT_FALSE(dict.Find(V("x")).has_value());
  ValueId a = dict.Intern(V("x"));
  ASSERT_TRUE(dict.Find(V("x")).has_value());
  EXPECT_EQ(*dict.Find(V("x")), a);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(ValueDictionaryTest, RanksPreserveValueOrder) {
  Rng rng(7);
  ValueDictionary dict;
  std::vector<ValueId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(dict.Intern(RandomAtom(&rng)));
  }
  // Interleave rank queries with further interns so both the monotone
  // extension and the dirty re-sort paths are exercised.
  for (int i = 0; i < 50; ++i) {
    ids.push_back(dict.Intern(RandomAtom(&rng)));
    ValueId a = ids[rng.NextBelow(ids.size())];
    ValueId b = ids[rng.NextBelow(ids.size())];
    int by_rank = dict.CompareIds(a, b);
    int by_value = dict.value(a).Compare(dict.value(b));
    EXPECT_EQ(by_rank < 0, by_value < 0);
    EXPECT_EQ(by_rank == 0, by_value == 0);
  }
  // Exhaustive check over all pairs via the rank table.
  for (ValueId a = 0; a < dict.size(); ++a) {
    for (ValueId b = a + 1; b < dict.size(); ++b) {
      EXPECT_EQ(dict.Rank(a) < dict.Rank(b),
                dict.value(a) < dict.value(b));
    }
  }
}

TEST(ValueDictionaryTest, IdsInValueOrderIsSorted) {
  Rng rng(11);
  ValueDictionary dict;
  for (int i = 0; i < 100; ++i) dict.Intern(RandomAtom(&rng));
  std::vector<ValueId> ordered = dict.IdsInValueOrder();
  ASSERT_EQ(ordered.size(), dict.size());
  for (size_t i = 1; i < ordered.size(); ++i) {
    EXPECT_LT(dict.value(ordered[i - 1]), dict.value(ordered[i]));
  }
}

TEST(ValueDictionaryTest, RoundTripIsLosslessIncludingSetAtoms) {
  Rng rng(13);
  ValueDictionary dict;
  for (int i = 0; i < 300; ++i) {
    Value v = RandomAtom(&rng);
    ValueId id = dict.Intern(v);
    EXPECT_EQ(dict.value(id), v) << v.ToString();
  }
  // Decoding an interned set reproduces the original ValueSet exactly.
  for (int i = 0; i < 100; ++i) {
    ValueSet s = RandomValueSet(&rng);
    IdSet encoded = InternValueSet(&dict, s);
    EXPECT_EQ(DecodeIdSet(dict, encoded), s);
  }
}

/// The heart of the property test: every IdSet operation agrees exactly
/// with the corresponding ValueSet operation on the decoded sets.
TEST(ValueDictionaryTest, IdSetOpsAgreeWithValueSetOps) {
  Rng rng(17);
  ValueDictionary dict;
  for (int iter = 0; iter < 500; ++iter) {
    ValueSet a = RandomValueSet(&rng);
    ValueSet b = RandomValueSet(&rng);
    IdSet ea = InternValueSet(&dict, a);
    IdSet eb = InternValueSet(&dict, b);
    EXPECT_EQ(DecodeIdSet(dict, ea.Union(eb)), a.Union(b));
    EXPECT_EQ(DecodeIdSet(dict, ea.Intersect(eb)), a.Intersect(b));
    EXPECT_EQ(DecodeIdSet(dict, ea.Difference(eb)), a.Difference(b));
    EXPECT_EQ(ea.IsSubsetOf(eb), a.IsSubsetOf(b));
    EXPECT_EQ(ea.IsDisjointFrom(eb), a.IsDisjointFrom(b));
    EXPECT_EQ(ea == eb, a == b);
    // Contains against every element of both sides.
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_TRUE(ea.Contains(dict.Intern(a[i])));
      EXPECT_EQ(eb.Contains(dict.Intern(a[i])), b.Contains(a[i]));
    }
    // Hash is consistent with equality.
    if (ea == eb) {
      EXPECT_EQ(ea.Hash(), eb.Hash());
    }
  }
}

TEST(ValueDictionaryTest, IdSetInsertErase) {
  IdSet s;
  EXPECT_TRUE(s.Insert(5));
  EXPECT_TRUE(s.Insert(3));
  EXPECT_FALSE(s.Insert(5));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_TRUE(s.Erase(3));
  EXPECT_FALSE(s.Erase(3));
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.single(), 5u);
}

TEST(ValueDictionaryTest, TupleRoundTrip) {
  Rng rng(19);
  ValueDictionary dict;
  for (int iter = 0; iter < 50; ++iter) {
    NfrTuple t{RandomValueSet(&rng), RandomValueSet(&rng),
               RandomValueSet(&rng)};
    EncodedTuple enc = InternTuple(&dict, t);
    EXPECT_EQ(DecodeTuple(dict, enc), t);
  }
}

TEST(ValueDictionaryTest, SerdeRoundTripPreservesIdAssignment) {
  Rng rng(23);
  ValueDictionary dict;
  for (int i = 0; i < 150; ++i) dict.Intern(RandomAtom(&rng));
  BufferWriter out;
  EncodeValueDictionary(dict, &out);
  BufferReader in(out.data());
  Result<std::shared_ptr<ValueDictionary>> decoded =
      DecodeValueDictionary(&in);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ((*decoded)->size(), dict.size());
  for (ValueId id = 0; id < dict.size(); ++id) {
    // Identical id -> value mapping: stored encoded state stays valid.
    EXPECT_EQ((*decoded)->value(id), dict.value(id));
  }
}

TEST(ValueDictionaryTest, DecodeRejectsDuplicates) {
  BufferWriter out;
  out.PutU32(2);
  EncodeValue(V("dup"), &out);
  EncodeValue(V("dup"), &out);
  BufferReader in(out.data());
  EXPECT_FALSE(DecodeValueDictionary(&in).ok());
}

}  // namespace
}  // namespace nf2
