#include <gtest/gtest.h>

#include "core/schema.h"

namespace nf2 {
namespace {

TEST(SchemaTest, OfStringsBuildsStringAttributes) {
  Schema s = Schema::OfStrings({"Student", "Course", "Club"});
  EXPECT_EQ(s.degree(), 3u);
  EXPECT_EQ(s.attribute(0).name, "Student");
  EXPECT_EQ(s.attribute(0).type, ValueType::kString);
  EXPECT_EQ(s.attribute(2).name, "Club");
}

TEST(SchemaTest, MixedTypes) {
  Schema s({{"Id", ValueType::kInt}, {"Name", ValueType::kString}});
  EXPECT_EQ(s.attribute(0).type, ValueType::kInt);
  EXPECT_EQ(s.attribute(1).type, ValueType::kString);
}

TEST(SchemaTest, IndexOf) {
  Schema s = Schema::OfStrings({"A", "B", "C"});
  EXPECT_EQ(s.IndexOf("B"), 1u);
  EXPECT_EQ(s.IndexOf("Z"), std::nullopt);
}

TEST(SchemaTest, RequireIndexErrorsOnMissing) {
  Schema s = Schema::OfStrings({"A"});
  Result<size_t> r = s.RequireIndex("B");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(s.RequireIndex("A").ok());
  EXPECT_EQ(*s.RequireIndex("A"), 0u);
}

TEST(SchemaTest, Project) {
  Schema s = Schema::OfStrings({"A", "B", "C"});
  Schema p = s.Project({2, 0});
  EXPECT_EQ(p.degree(), 2u);
  EXPECT_EQ(p.attribute(0).name, "C");
  EXPECT_EQ(p.attribute(1).name, "A");
}

TEST(SchemaTest, Equality) {
  EXPECT_EQ(Schema::OfStrings({"A", "B"}), Schema::OfStrings({"A", "B"}));
  EXPECT_NE(Schema::OfStrings({"A", "B"}), Schema::OfStrings({"B", "A"}));
  EXPECT_NE(Schema::OfStrings({"A"}),
            Schema({{"A", ValueType::kInt}}));
}

TEST(SchemaTest, ToString) {
  Schema s({{"Id", ValueType::kInt}, {"Name", ValueType::kString}});
  EXPECT_EQ(s.ToString(), "(Id INT, Name STRING)");
}

TEST(SchemaDeathTest, DuplicateNamesFatal) {
  EXPECT_DEATH(Schema::OfStrings({"A", "A"}), "Duplicate attribute");
}

TEST(AttrSetTest, EmptyByDefault) {
  AttrSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
}

TEST(AttrSetTest, AddRemoveContains) {
  AttrSet s;
  s.Add(3);
  s.Add(0);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(1));
  EXPECT_EQ(s.size(), 2u);
  s.Remove(0);
  EXPECT_FALSE(s.Contains(0));
  EXPECT_EQ(s.size(), 1u);
}

TEST(AttrSetTest, InitializerList) {
  AttrSet s{0, 2, 5};
  EXPECT_EQ(s.ToVector(), (std::vector<size_t>{0, 2, 5}));
}

TEST(AttrSetTest, All) {
  AttrSet s = AttrSet::All(3);
  EXPECT_EQ(s.ToVector(), (std::vector<size_t>{0, 1, 2}));
  EXPECT_EQ(AttrSet::All(0).size(), 0u);
}

TEST(AttrSetTest, SetAlgebra) {
  AttrSet a{0, 1};
  AttrSet b{1, 2};
  EXPECT_EQ(a.Union(b), (AttrSet{0, 1, 2}));
  EXPECT_EQ(a.Intersect(b), (AttrSet{1}));
  EXPECT_EQ(a.Difference(b), (AttrSet{0}));
}

TEST(AttrSetTest, SubsetRelation) {
  EXPECT_TRUE((AttrSet{1}).IsSubsetOf(AttrSet{0, 1}));
  EXPECT_TRUE(AttrSet().IsSubsetOf(AttrSet{0}));
  EXPECT_FALSE((AttrSet{2}).IsSubsetOf(AttrSet{0, 1}));
}

TEST(AttrSetTest, ToStringUsesSchemaNames) {
  Schema s = Schema::OfStrings({"A", "B", "C"});
  EXPECT_EQ((AttrSet{0, 2}).ToString(s), "{A,C}");
  EXPECT_EQ(AttrSet().ToString(s), "{}");
}

}  // namespace
}  // namespace nf2
