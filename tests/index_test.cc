#include <gtest/gtest.h>

#include <memory>

#include "algebra/predicate.h"
#include "core/index.h"
#include "core/update.h"
#include "tests/test_util.h"

namespace nf2 {
namespace {

NfrTuple T(std::initializer_list<const char*> a,
           std::initializer_list<const char*> b) {
  std::vector<Value> av, bv;
  for (const char* s : a) av.push_back(V(s));
  for (const char* s : b) bv.push_back(V(s));
  return NfrTuple{ValueSet(std::move(av)), ValueSet(std::move(bv))};
}

TEST(NfrIndexTest, AddAndPostings) {
  NfrIndex index(2);
  index.AddTuple(0, T({"a1", "a2"}, {"b1"}));
  index.AddTuple(1, T({"a2"}, {"b2"}));
  const std::vector<size_t>* a2 = index.Postings(0, V("a2"));
  ASSERT_NE(a2, nullptr);
  EXPECT_EQ(*a2, (std::vector<size_t>{0, 1}));
  const std::vector<size_t>* b1 = index.Postings(1, V("b1"));
  ASSERT_NE(b1, nullptr);
  EXPECT_EQ(*b1, (std::vector<size_t>{0}));
  EXPECT_EQ(index.Postings(0, V("zz")), nullptr);
  EXPECT_EQ(index.entry_count(), 5u);
}

TEST(NfrIndexTest, RemoveCleansUp) {
  NfrIndex index(2);
  NfrTuple t = T({"a1", "a2"}, {"b1"});
  index.AddTuple(0, t);
  index.RemoveTuple(0, t);
  EXPECT_EQ(index.Postings(0, V("a1")), nullptr);
  EXPECT_EQ(index.entry_count(), 0u);
}

TEST(NfrIndexTest, MoveRelabelsIds) {
  NfrIndex index(2);
  NfrTuple t = T({"a1"}, {"b1"});
  index.AddTuple(5, t);
  index.MoveTuple(5, 2, t);
  const std::vector<size_t>* a1 = index.Postings(0, V("a1"));
  ASSERT_NE(a1, nullptr);
  EXPECT_EQ(*a1, (std::vector<size_t>{2}));
}

TEST(NfrIndexTest, ContainingAll) {
  NfrIndex index(2);
  index.AddTuple(0, T({"a1", "a2"}, {"b1"}));
  index.AddTuple(1, T({"a1", "a3"}, {"b1", "b2"}));
  index.AddTuple(2, T({"a2", "a3"}, {"b2"}));
  EXPECT_EQ(index.ContainingAll(0, ValueSet{V("a1"), V("a2")}),
            (std::vector<size_t>{0}));
  EXPECT_EQ(index.ContainingAll(0, ValueSet{V("a3")}),
            (std::vector<size_t>{1, 2}));
  EXPECT_TRUE(index.ContainingAll(0, ValueSet{V("a1"), V("zz")}).empty());
}

TEST(NfrIndexTest, ContainingTuple) {
  NfrIndex index(2);
  index.AddTuple(0, T({"a1", "a2"}, {"b1"}));
  index.AddTuple(1, T({"a3"}, {"b1", "b2"}));
  EXPECT_EQ(index.ContainingTuple(T({"a2"}, {"b1"})),
            (std::vector<size_t>{0}));
  EXPECT_EQ(index.ContainingTuple(T({"a3"}, {"b2"})),
            (std::vector<size_t>{1}));
  EXPECT_TRUE(index.ContainingTuple(T({"a2"}, {"b2"})).empty());
}

// Regression: RemoveEncoded used to leave emptied posting slots
// allocated forever, so a churn workload (intern fresh values, insert,
// delete) grew postings_by_id_ monotonically. Emptied lists must
// release their buffers and trailing empty slots must be popped.
TEST(NfrIndexTest, RemoveEncodedReclaimsSlots) {
  auto dict = std::make_shared<ValueDictionary>();
  NfrIndex index(2, dict);
  NfrTuple low = T({"a1"}, {"b1"});
  NfrTuple high = T({"a2", "a3"}, {"b2"});
  EncodedTuple low_enc = InternTuple(dict.get(), low);
  EncodedTuple high_enc = InternTuple(dict.get(), high);
  index.AddEncoded(0, low_enc);
  index.AddEncoded(1, high_enc);
  const size_t full = index.slot_count();
  // Deleting the tuple that carries the highest ValueIds shrinks the
  // slot arrays back down.
  index.RemoveEncoded(1, high_enc);
  EXPECT_LT(index.slot_count(), full);
  // An emptied index holds no slots at all.
  index.RemoveEncoded(0, low_enc);
  EXPECT_EQ(index.slot_count(), 0u);
  EXPECT_EQ(index.entry_count(), 0u);
  // Slots regrow on demand after the shrink.
  index.AddEncoded(2, high_enc);
  EXPECT_EQ(index.ContainingEncoded(high_enc), (std::vector<size_t>{2}));
}

TEST(IntersectSortedTest, Basics) {
  EXPECT_EQ(IntersectSorted({1, 3, 5}, {2, 3, 5, 7}),
            (std::vector<size_t>{3, 5}));
  EXPECT_TRUE(IntersectSorted({}, {1}).empty());
  EXPECT_TRUE(IntersectSorted({1, 2}, {3, 4}).empty());
}

// ---- Indexed vs scan search modes must behave identically -------------
class SearchModeTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(SearchModeTest, ModesAgreeOnRandomWorkload) {
  auto [seed, degree] = GetParam();
  Rng rng(seed);
  std::vector<std::string> names;
  for (size_t i = 0; i < degree; ++i) names.push_back(StrCat("E", i + 1));
  Schema schema = Schema::OfStrings(names);
  Permutation perm = IdentityPermutation(degree);
  rng.Shuffle(&perm);

  CanonicalRelation indexed(schema, perm,
                            CanonicalRelation::SearchMode::kIndexed);
  CanonicalRelation scanned(schema, perm,
                            CanonicalRelation::SearchMode::kScan);
  const size_t domain = 3;
  for (int step = 0; step < 80; ++step) {
    std::vector<Value> values;
    for (size_t i = 0; i < degree; ++i) {
      values.push_back(
          Value::String(StrCat("v", i, "_", rng.NextBelow(domain))));
    }
    FlatTuple t(std::move(values));
    if (rng.NextBool(0.65)) {
      Status a = indexed.Insert(t);
      Status b = scanned.Insert(t);
      ASSERT_EQ(a.code(), b.code()) << t.ToString();
    } else {
      Status a = indexed.Delete(t);
      Status b = scanned.Delete(t);
      ASSERT_EQ(a.code(), b.code()) << t.ToString();
    }
    ASSERT_TRUE(indexed.relation().EqualsAsSet(scanned.relation()))
        << "step " << step << "\nindexed:\n"
        << indexed.relation().ToString() << "scanned:\n"
        << scanned.relation().ToString();
    // And both equal the nest-from-scratch oracle.
    NfrRelation oracle =
        CanonicalForm(indexed.relation().Expand(), perm);
    ASSERT_TRUE(indexed.relation().EqualsAsSet(oracle));
  }
  // The §4 operation counts are identical: the index changes HOW the
  // candidate is found, never WHICH candidate.
  EXPECT_EQ(indexed.stats().compositions, scanned.stats().compositions);
  EXPECT_EQ(indexed.stats().decompositions,
            scanned.stats().decompositions);
  EXPECT_EQ(indexed.stats().recons_calls, scanned.stats().recons_calls);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SearchModeTest,
    ::testing::Combine(::testing::Range<uint64_t>(0, 10),
                       ::testing::Values<size_t>(2, 3, 4)));

TEST(SearchModeTest2, IndexReducesCandidateScans) {
  // With many distinct keys, posting lists are short and the indexed
  // search examines far fewer tuples.
  Schema schema = Schema::OfStrings({"K", "X", "Y"});
  Permutation perm{2, 1, 0};
  CanonicalRelation indexed(schema, perm,
                            CanonicalRelation::SearchMode::kIndexed);
  CanonicalRelation scanned(schema, perm,
                            CanonicalRelation::SearchMode::kScan);
  for (int i = 0; i < 400; ++i) {
    FlatTuple t{Value::String(StrCat("k", i)),
                Value::String(StrCat("x", i % 5)),
                Value::String(StrCat("y", i % 3))};
    ASSERT_TRUE(indexed.Insert(t).ok());
    ASSERT_TRUE(scanned.Insert(t).ok());
  }
  EXPECT_LT(indexed.stats().candidate_scans,
            scanned.stats().candidate_scans / 4)
      << "indexed=" << indexed.stats().candidate_scans
      << " scanned=" << scanned.stats().candidate_scans;
}

TEST(SearchModeTest2, TuplesContainingMatchesScanInBothModes) {
  Rng rng(55);
  FlatRelation flat = RandomFlatRelation(&rng, 3, 3, 20);
  Permutation perm{1, 0, 2};
  Result<CanonicalRelation> indexed = CanonicalRelation::FromFlat(
      flat, perm, CanonicalRelation::SearchMode::kIndexed);
  Result<CanonicalRelation> scanned = CanonicalRelation::FromFlat(
      flat, perm, CanonicalRelation::SearchMode::kScan);
  ASSERT_TRUE(indexed.ok() && scanned.ok());
  for (size_t attr = 0; attr < 3; ++attr) {
    for (int v = 0; v < 4; ++v) {
      Value probe = Value::String(StrCat("v", attr, "_", v));
      NfrRelation a = indexed->TuplesContaining(attr, probe);
      NfrRelation b = scanned->TuplesContaining(attr, probe);
      EXPECT_TRUE(a.EqualsAsSet(b))
          << "attr " << attr << " value " << probe.ToString();
      // And the result is exactly the tuple-level Eq-select.
      for (const NfrTuple& t : a.tuples()) {
        EXPECT_TRUE(t.at(attr).Contains(probe));
      }
    }
  }
  // Absent value: empty in both modes.
  EXPECT_EQ(indexed->TuplesContaining(0, V("zz")).size(), 0u);
  EXPECT_EQ(scanned->TuplesContaining(0, V("zz")).size(), 0u);
}

TEST(SearchModeTest2, PredicateAsSingleEq) {
  std::optional<std::pair<size_t, Value>> eq =
      Predicate::Eq(2, V("x")).AsSingleEq();
  ASSERT_TRUE(eq.has_value());
  EXPECT_EQ(eq->first, 2u);
  EXPECT_EQ(eq->second, V("x"));
  EXPECT_FALSE(Predicate::Ne(2, V("x")).AsSingleEq().has_value());
  EXPECT_FALSE(Predicate::And(Predicate::Eq(0, V("a")),
                              Predicate::Eq(1, V("b")))
                   .AsSingleEq()
                   .has_value());
  EXPECT_FALSE(Predicate::True().AsSingleEq().has_value());
}

TEST(SearchModeTest2, DegreeOneRelations) {
  // The degenerate degree-1 case exercises the index's universe branch.
  Schema schema = Schema::OfStrings({"A"});
  CanonicalRelation rel(schema, {0},
                        CanonicalRelation::SearchMode::kIndexed);
  ASSERT_TRUE(rel.Insert(FlatTuple{V("x")}).ok());
  ASSERT_TRUE(rel.Insert(FlatTuple{V("y")}).ok());
  // Degree-1 tuples always compose: one tuple with both values.
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_TRUE(rel.Contains(FlatTuple{V("x")}));
  ASSERT_TRUE(rel.Delete(FlatTuple{V("x")}).ok());
  EXPECT_EQ(rel.size(), 1u);
  EXPECT_FALSE(rel.Contains(FlatTuple{V("x")}));
}

}  // namespace
}  // namespace nf2
