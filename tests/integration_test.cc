// Full-stack integration tests: NFRQL -> engine -> §4 algorithms ->
// WAL/tables -> recovery, exercised together.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/fixedness.h"
#include "core/nest.h"
#include "engine/database.h"
#include "nfrql/executor.h"
#include "tests/test_util.h"

namespace nf2 {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("nf2_integration_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Asserts every relation of `db` is well-formed, canonical for its
  /// nest order, and satisfies its declared FDs — what nf2_check does.
  static void CheckIntegrity(Database* db) {
    for (const std::string& name : db->ListRelations()) {
      auto info = db->Info(name);
      auto rel = db->Relation(name);
      ASSERT_TRUE(info.ok() && rel.ok());
      ASSERT_TRUE((*rel)->Validate().ok()) << name;
      ASSERT_TRUE((*rel)->EqualsAsSet(
          CanonicalForm((*rel)->Expand(), (*info)->nest_order)))
          << name << " not canonical";
      ASSERT_TRUE((*info)->fd_set().SatisfiedBy((*rel)->Expand()))
          << name << " violates declared FDs";
    }
  }

  std::string dir_;
};

TEST_F(IntegrationTest, RegistrarLifecycleWithCrashRecovery) {
  // Phase 1: set up via NFRQL, then crash without checkpoint.
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    Executor ex(db->get());
    ASSERT_TRUE(ex.Execute("CREATE RELATION takes (Student STRING, "
                           "Course STRING, Club STRING) "
                           "MVD Student ->-> Course")
                    .ok());
    ASSERT_TRUE(ex.Execute("CREATE RELATION grades (Student STRING, "
                           "Course STRING, Grade INT) "
                           "NEST Grade, Course, Student "
                           "FD Student, Course -> Grade")
                    .ok());
    ASSERT_TRUE(ex.Execute("INSERT INTO takes VALUES "
                           "(ada, algebra, chess), (ada, crypto, chess), "
                           "(bob, algebra, go)")
                    .ok());
    ASSERT_TRUE(
        ex.Execute("INSERT INTO grades VALUES (ada, algebra, 95), "
                   "(ada, crypto, 88), (bob, algebra, 71)")
            .ok());
    // FD enforcement: a second grade for (ada, algebra) must fail.
    Result<std::string> dup =
        ex.Execute("INSERT INTO grades VALUES (ada, algebra, 60)");
    ASSERT_FALSE(dup.ok());
    EXPECT_EQ(dup.status().code(), StatusCode::kFailedPrecondition);
    (void)(*db).release();  // Crash.
  }
  // Phase 2: recover, mutate in a transaction, commit, checkpoint.
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok()) << db.status();
    CheckIntegrity(db->get());
    Executor ex(db->get());
    Result<std::string> listing = ex.Execute("LIST");
    ASSERT_TRUE(listing.ok());
    EXPECT_EQ(*listing, "grades\ntakes");
    ASSERT_TRUE(ex.Execute("BEGIN").ok());
    ASSERT_TRUE(
        ex.Execute("DELETE FROM takes WHERE Course = crypto").ok());
    ASSERT_TRUE(
        ex.Execute("DELETE FROM grades WHERE Course = crypto").ok());
    ASSERT_TRUE(ex.Execute("COMMIT").ok());
    ASSERT_TRUE(ex.Execute("CHECKPOINT").ok());
    CheckIntegrity(db->get());
  }
  // Phase 3: reopen from the checkpoint and verify final state.
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  CheckIntegrity(db->get());
  Result<FlatRelation> takes = (*db)->Scan("takes");
  ASSERT_TRUE(takes.ok());
  EXPECT_EQ(takes->size(), 2u);
  EXPECT_FALSE(
      takes->Contains(FlatTuple{V("ada"), V("crypto"), V("chess")}));
  Result<FlatRelation> grades = (*db)->Scan("grades");
  ASSERT_TRUE(grades.ok());
  EXPECT_EQ(grades->size(), 2u);
}

TEST_F(IntegrationTest, MixedValueTypesEndToEnd) {
  Schema schema({{"Name", ValueType::kString},
                 {"Level", ValueType::kInt},
                 {"Score", ValueType::kDouble},
                 {"Active", ValueType::kBool},
                 {"Tags", ValueType::kSet}});
  Value tags = Value::SetOf({V("alpha"), V("beta")});
  FlatTuple row1{V("ada"), Value::Int(3), Value::Double(9.5),
                 Value::Bool(true), tags};
  FlatTuple row2{V("bob"), Value::Int(3), Value::Double(9.5),
                 Value::Bool(true), tags};
  {
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->CreateRelation("players", schema, {4, 3, 2, 1, 0})
                    .ok());
    ASSERT_TRUE((*db)->Insert("players", row1).ok());
    ASSERT_TRUE((*db)->Insert("players", row2).ok());
    // Identical dependents: the two players share one NFR tuple.
    EXPECT_EQ((*(*db)->Relation("players"))->size(), 1u);
    ASSERT_TRUE((*db)->Checkpoint().ok());
  }
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok()) << db.status();
  CheckIntegrity(db->get());
  Result<bool> has = (*db)->Contains("players", row1);
  ASSERT_TRUE(has.ok());
  EXPECT_TRUE(*has);
  Result<FlatRelation> q = (*db)->Query(
      "players", Predicate::Gt(2, Value::Double(9.0)));
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->size(), 2u);
}

TEST_F(IntegrationTest, AutoCheckpointedWorkloadSurvivesManyReopens) {
  Rng rng(2026);
  Schema schema = Schema::OfStrings({"A", "B", "C"});
  FlatRelation reference(schema);
  Database::Options options;
  options.auto_checkpoint_every = 16;
  for (int session = 0; session < 5; ++session) {
    auto db = Database::Open(dir_, options);
    ASSERT_TRUE(db.ok()) << "session " << session << ": " << db.status();
    if (session == 0) {
      ASSERT_TRUE((*db)->CreateRelation("r", schema, {2, 1, 0}).ok());
    }
    ASSERT_EQ(*(*db)->Scan("r"), reference) << "session " << session;
    for (int op = 0; op < 30; ++op) {
      FlatTuple t{V(StrCat("a", rng.NextBelow(6)).c_str()),
                  V(StrCat("b", rng.NextBelow(6)).c_str()),
                  V(StrCat("c", rng.NextBelow(6)).c_str())};
      if (rng.NextBool(0.7)) {
        if ((*db)->Insert("r", t).ok()) reference.Insert(t);
      } else {
        if ((*db)->Delete("r", t).ok()) reference.Erase(t);
      }
    }
    // Half the sessions crash, half close cleanly.
    if (session % 2 == 0) {
      (void)(*db).release();
    }
  }
  auto db = Database::Open(dir_, options);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(*(*db)->Scan("r"), reference);
  CheckIntegrity(db->get());
}

TEST_F(IntegrationTest, HighDegreeStressAgainstOracle) {
  const size_t degree = 6;
  std::vector<std::string> names;
  for (size_t i = 0; i < degree; ++i) names.push_back(StrCat("E", i + 1));
  Schema schema = Schema::OfStrings(names);
  Permutation perm{5, 3, 1, 4, 2, 0};
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)->CreateRelation("wide", schema, perm).ok());
  Rng rng(7);
  FlatRelation reference(schema);
  for (int op = 0; op < 120; ++op) {
    std::vector<Value> values;
    for (size_t i = 0; i < degree; ++i) {
      values.push_back(V(StrCat("v", i, "_", rng.NextBelow(2)).c_str()));
    }
    FlatTuple t(std::move(values));
    if (rng.NextBool(0.6)) {
      if ((*db)->Insert("wide", t).ok()) reference.Insert(t);
    } else {
      if ((*db)->Delete("wide", t).ok()) reference.Erase(t);
    }
  }
  EXPECT_EQ(*(*db)->Scan("wide"), reference);
  Result<const NfrRelation*> rel = (*db)->Relation("wide");
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE((*rel)->EqualsAsSet(CanonicalForm(reference, perm)));
  // With binary domains the whole space is {0,1}^6; heavy merging
  // must have occurred.
  EXPECT_LT((*rel)->size(), reference.size());
}

TEST_F(IntegrationTest, TheoremFivePayoffVisibleThroughEngine) {
  // The fixedness the §3.4 advisor promises is observable on live data.
  auto db = Database::Open(dir_);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE((*db)
                  ->CreateRelation(
                      "takes", Schema::OfStrings({"S", "C", "B"}),
                      /*nest_order=*/{}, /*fds=*/{},
                      {Mvd{AttrSet{0}, AttrSet{1}}})
                  .ok());
  Rng rng(9);
  for (int s = 0; s < 15; ++s) {
    for (int c = 0; c < 3; ++c) {
      ASSERT_TRUE((*db)
                      ->Insert("takes",
                               FlatTuple{V(StrCat("s", s).c_str()),
                                         V(StrCat("c", rng.NextBelow(9))
                                               .c_str()),
                                         V(StrCat("b", s % 4).c_str())})
                      .ok() ||
                  true);  // Duplicates possible; ignore.
    }
  }
  Result<const NfrRelation*> rel = (*db)->Relation("takes");
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(IsFixedOn(**rel, {0}));  // One tuple per student.
}

}  // namespace
}  // namespace nf2
