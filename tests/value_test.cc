#include <gtest/gtest.h>

#include <unordered_set>

#include "core/value.h"

namespace nf2 {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "null");
}

TEST(ValueTest, TypedConstructorsAndAccessors) {
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(-7).AsInt(), -7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("s1").AsString(), "s1");
}

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value::Bool(true).type(), ValueType::kBool);
  EXPECT_EQ(Value::Int(1).type(), ValueType::kInt);
  EXPECT_EQ(Value::Double(1.0).type(), ValueType::kDouble);
  EXPECT_EQ(Value::String("x").type(), ValueType::kString);
}

TEST(ValueTest, EqualitySameType) {
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_NE(Value::Int(3), Value::Int(4));
  EXPECT_EQ(Value::String("a"), Value::String("a"));
  EXPECT_NE(Value::String("a"), Value::String("b"));
}

TEST(ValueTest, CrossTypeValuesNeverEqual) {
  EXPECT_NE(Value::Int(1), Value::Double(1.0));
  EXPECT_NE(Value::String("1"), Value::Int(1));
  EXPECT_NE(Value::Null(), Value::Int(0));
}

TEST(ValueTest, OrderingWithinType) {
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  EXPECT_LT(Value::Double(-1.0), Value::Double(0.0));
  EXPECT_LT(Value::Bool(false), Value::Bool(true));
}

TEST(ValueTest, OrderingAcrossTypesIsByTag) {
  // Null < Bool < Int < Double < String by variant index.
  EXPECT_LT(Value::Null(), Value::Bool(false));
  EXPECT_LT(Value::Bool(true), Value::Int(-100));
  EXPECT_LT(Value::Int(100), Value::Double(-5.0));
  EXPECT_LT(Value::Double(9.9), Value::String(""));
}

TEST(ValueTest, CompareIsAntisymmetric) {
  Value a = Value::Int(1), b = Value::Int(2);
  EXPECT_EQ(a.Compare(b), -b.Compare(a));
  EXPECT_EQ(a.Compare(a), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::String("s1").Hash(), Value::String("s1").Hash());
  EXPECT_EQ(Value::Int(12).Hash(), Value::Int(12).Hash());
  // Different payloads should (overwhelmingly) hash differently.
  EXPECT_NE(Value::Int(12).Hash(), Value::Int(13).Hash());
  EXPECT_NE(Value::Int(1).Hash(), Value::Bool(true).Hash());
}

TEST(ValueTest, UsableInUnorderedSet) {
  std::unordered_set<Value> set;
  set.insert(Value::String("a"));
  set.insert(Value::String("a"));
  set.insert(Value::Int(1));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(Value::String("a")));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::String("c1").ToString(), "c1");
}

TEST(ValueTest, ShorthandConstructors) {
  EXPECT_EQ(V("s1"), Value::String("s1"));
  EXPECT_EQ(V(int64_t{5}), Value::Int(5));
}

TEST(ValueTest, ValueTypeToStringNames) {
  EXPECT_STREQ(ValueTypeToString(ValueType::kNull), "NULL");
  EXPECT_STREQ(ValueTypeToString(ValueType::kBool), "BOOL");
  EXPECT_STREQ(ValueTypeToString(ValueType::kInt), "INT");
  EXPECT_STREQ(ValueTypeToString(ValueType::kDouble), "DOUBLE");
  EXPECT_STREQ(ValueTypeToString(ValueType::kString), "STRING");
}

}  // namespace
}  // namespace nf2
