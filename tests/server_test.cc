// End-to-end tests of the nf2d server stack: frame protocol, client
// library, worker pool backpressure, and graceful shutdown — real TCP
// sockets on a loopback ephemeral port.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "util/string_util.h"

namespace nf2 {
namespace {

using server::Client;
using server::Server;
using server::ServerOptions;

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("nf2_server_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    db_ = *std::move(db);
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove_all(dir_);
  }

  /// Starts a server on an ephemeral port over db_.
  std::unique_ptr<Server> StartServer(ServerOptions options = {}) {
    options.port = 0;
    auto server = std::make_unique<Server>(db_.get(), options);
    Status s = server->Start();
    EXPECT_TRUE(s.ok()) << s.ToString();
    return server;
  }

  Client MustConnect(const Server& server) {
    auto client = Client::Connect("127.0.0.1", server.port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return *std::move(client);
  }

  std::string dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(ServerTest, PingQueryAndQuitRoundTrip) {
  auto server = StartServer();
  Client client = MustConnect(*server);

  ASSERT_TRUE(client.Ping().ok());

  auto created = client.Execute(
      "CREATE RELATION takes (Student STRING, Course STRING, Club STRING) "
      "MVD Student ->-> Course");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ASSERT_TRUE(client
                  .Execute("INSERT INTO takes VALUES (ada, algebra, chess), "
                           "(ada, crypto, chess)")
                  .ok());
  auto count = client.Execute("SELECT COUNT(*) FROM takes");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, "2");

  // Typed errors survive the wire: code and message both round-trip.
  auto missing = client.Execute("SELECT * FROM nonesuch");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_NE(missing.status().message().find("nonesuch"), std::string::npos);

  // Prometheus text over the protocol, trailing newline included.
  auto prom = client.Execute("\\metrics prom");
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom->find("nf2_server_requests_total"), std::string::npos);
  EXPECT_EQ(prom->back(), '\n');

  ASSERT_TRUE(client.Quit().ok());
  EXPECT_FALSE(client.connected());
}

TEST_F(ServerTest, ManyClientsReadConcurrently) {
  auto server = StartServer();
  {
    Client setup = MustConnect(*server);
    ASSERT_TRUE(setup.Execute("CREATE RELATION r (a STRING, b STRING)").ok());
    ASSERT_TRUE(
        setup.Execute("INSERT INTO r VALUES (x, y), (u, v), (p, q)").ok());
    ASSERT_TRUE(setup.Quit().ok());
  }

  constexpr int kClients = 8;
  constexpr int kQueriesEach = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&server, &failures, this] {
      auto client = Client::Connect("127.0.0.1", server->port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int q = 0; q < kQueriesEach; ++q) {
        auto out = client->Execute("SELECT COUNT(*) FROM r");
        if (!out.ok() || *out != "3") ++failures;
      }
      if (!client->Quit().ok()) ++failures;
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(db_->metrics()->GetCounter("nf2_server_requests_total")->value(),
            static_cast<uint64_t>(kClients * kQueriesEach));
}

// workers=1, queue=1: one in-flight \sleep plus one queued request
// saturate the server, so a third concurrent request must bounce with
// kBusy (surfaced by the client as kUnavailable).
TEST_F(ServerTest, QueueFullAnswersBusy) {
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  auto server = StartServer(options);

  Client sleeper = MustConnect(*server);
  Client filler = MustConnect(*server);
  Client rejected = MustConnect(*server);

  std::thread sleep_thread([&sleeper] {
    auto out = sleeper.Execute("\\sleep 1500");
    EXPECT_TRUE(out.ok()) << out.status().ToString();
  });
  // Let the sleeper reach the worker, then occupy the single queue slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  std::thread fill_thread([&filler] {
    auto out = filler.Execute("\\sleep 10");
    EXPECT_TRUE(out.ok()) << out.status().ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  auto busy = rejected.Execute("LIST");
  ASSERT_FALSE(busy.ok());
  EXPECT_EQ(busy.status().code(), StatusCode::kUnavailable);

  sleep_thread.join();
  fill_thread.join();
  EXPECT_GE(db_->metrics()->GetCounter("nf2_server_busy_total")->value(), 1u);

  // The server recovered: the rejected client can retry successfully.
  auto retry = rejected.Execute("LIST");
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

// Another session's open transaction bounces mutations with kBusy but
// admits reads.
TEST_F(ServerTest, TransactionConflictAnswersBusyOverTheWire) {
  auto server = StartServer();
  Client owner = MustConnect(*server);
  Client other = MustConnect(*server);

  ASSERT_TRUE(owner.Execute("CREATE RELATION r (x STRING)").ok());
  ASSERT_TRUE(owner.Execute("BEGIN").ok());
  ASSERT_TRUE(owner.Execute("INSERT INTO r VALUES (mine)").ok());

  auto blocked = other.Execute("INSERT INTO r VALUES (theirs)");
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kUnavailable);
  auto read = other.Execute("SELECT COUNT(*) FROM r");
  ASSERT_TRUE(read.ok());

  ASSERT_TRUE(owner.Execute("COMMIT").ok());
  EXPECT_TRUE(other.Execute("INSERT INTO r VALUES (theirs)").ok());
}

// Stop() with a connection mid-transaction: the session's transaction
// rolls back, acknowledged statements survive via the shutdown
// checkpoint, and the engine is left clean.
TEST_F(ServerTest, GracefulShutdownRollsBackOpenTransactions) {
  auto server = StartServer();
  Client client = MustConnect(*server);
  ASSERT_TRUE(client.Execute("CREATE RELATION r (x STRING)").ok());
  ASSERT_TRUE(client.Execute("INSERT INTO r VALUES (durable)").ok());
  ASSERT_TRUE(client.Execute("BEGIN").ok());
  ASSERT_TRUE(client.Execute("INSERT INTO r VALUES (doomed)").ok());
  {
    // Peeking at engine state while the server is live requires the
    // gate, like any other reader.
    auto lock = server->session_manager()->gate()->LockShared();
    ASSERT_TRUE(db_->in_transaction());
  }

  server->Stop();

  EXPECT_FALSE(db_->in_transaction());
  auto scan = db_->Scan("r");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), 1u);
  EXPECT_TRUE(db_->VerifyIntegrity().ok());

  // The connection is dead from the client's point of view.
  EXPECT_FALSE(client.Execute("LIST").ok());
}

TEST_F(ServerTest, StopIsIdempotentAndRestartableDatabase) {
  auto server = StartServer();
  {
    Client client = MustConnect(*server);
    ASSERT_TRUE(client.Execute("CREATE RELATION r (x STRING)").ok());
    ASSERT_TRUE(client.Execute("INSERT INTO r VALUES (v)").ok());
    ASSERT_TRUE(client.Quit().ok());
  }
  server->Stop();
  server->Stop();  // Idempotent.
  server.reset();

  // The shutdown checkpoint made the state durable: reopen and read.
  db_.reset();
  auto reopened = Database::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  auto scan = (*reopened)->Scan("r");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), 1u);
  db_ = *std::move(reopened);
}

TEST_F(ServerTest, OversizedFrameIsRejected) {
  auto server = StartServer();
  Client client = MustConnect(*server);
  // The client-side WriteFrame refuses to build an oversized frame, so
  // this exercises the limit without shipping 64 MiB through loopback.
  std::string huge(server::kMaxFramePayload + 1, 'x');
  auto out = client.Execute(huge);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

// ---- Protocol v1: pipelined batches + parsed-statement cache. ----

TEST_F(ServerTest, BatchMixedReadWriteExecutesInOrder) {
  auto server = StartServer();
  Client client = MustConnect(*server);

  auto results = client.ExecuteBatch({
      "CREATE RELATION r (a STRING, b STRING)",
      "INSERT INTO r VALUES (x, y), (u, v)",
      "SELECT COUNT(*) FROM r",
      "INSERT INTO r VALUES (p, q)",
      "SELECT COUNT(*) FROM r",
  });
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 5u);
  for (const auto& r : *results) ASSERT_TRUE(r.ok()) << r.status().ToString();
  // In-order execution is observable through the two counts straddling
  // the second insert.
  EXPECT_EQ(*(*results)[2], "2");
  EXPECT_EQ(*(*results)[4], "3");
}

TEST_F(ServerTest, BatchMidStatementErrorReportsInPlaceAndContinues) {
  auto server = StartServer();
  Client client = MustConnect(*server);
  ASSERT_TRUE(client.Execute("CREATE RELATION r (x STRING)").ok());

  auto results = client.ExecuteBatch({
      "INSERT INTO r VALUES (one)",
      "SELECT * FROM nonesuch",
      "this does not parse",
      "SELECT COUNT(*) FROM r",
  });
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 4u);
  EXPECT_TRUE((*results)[0].ok());
  ASSERT_FALSE((*results)[1].ok());
  EXPECT_EQ((*results)[1].status().code(), StatusCode::kNotFound);
  EXPECT_NE((*results)[1].status().message().find("nonesuch"),
            std::string::npos);
  ASSERT_FALSE((*results)[2].ok());
  EXPECT_EQ((*results)[2].status().code(), StatusCode::kInvalidArgument);
  // The batch kept going after both failures.
  ASSERT_TRUE((*results)[3].ok());
  EXPECT_EQ(*(*results)[3], "1");
}

TEST_F(ServerTest, EmptyBatchIsAnsweredWithEmptyReply) {
  auto server = StartServer();
  Client client = MustConnect(*server);
  auto results = client.ExecuteBatch({});
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  EXPECT_TRUE(results->empty());
}

TEST_F(ServerTest, BatchTransactionConflictSurfacesBusyEntries) {
  auto server = StartServer();
  Client owner = MustConnect(*server);
  Client other = MustConnect(*server);

  ASSERT_TRUE(owner.Execute("CREATE RELATION r (x STRING)").ok());
  ASSERT_TRUE(owner.Execute("BEGIN").ok());
  ASSERT_TRUE(owner.Execute("INSERT INTO r VALUES (mine)").ok());

  // The other session's batch: its write bounces kUnavailable (the
  // per-entry busy tag), but its reads still run.
  auto results = other.ExecuteBatch(
      {"SELECT COUNT(*) FROM r", "INSERT INTO r VALUES (theirs)", "LIST"});
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 3u);
  EXPECT_TRUE((*results)[0].ok());
  ASSERT_FALSE((*results)[1].ok());
  EXPECT_EQ((*results)[1].status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE((*results)[2].ok());

  ASSERT_TRUE(owner.Execute("COMMIT").ok());
}

TEST_F(ServerTest, V0ClientInteroperatesWithV1Server) {
  auto server = StartServer();
  // A pure-v0 peer: only kQuery/kPing/kQuit frames, driven at the frame
  // level exactly as a PR-4 binary would speak them.
  Client v0 = MustConnect(*server);
  ASSERT_TRUE(v0.Ping().ok());
  ASSERT_TRUE(v0.Execute("CREATE RELATION r (x STRING)").ok());

  // A v1 peer batches against the same server between the v0 frames.
  Client v1 = MustConnect(*server);
  auto batched = v1.ExecuteBatch(
      {"INSERT INTO r VALUES (a)", "SELECT COUNT(*) FROM r"});
  ASSERT_TRUE(batched.ok());
  ASSERT_TRUE((*batched)[1].ok());
  EXPECT_EQ(*(*batched)[1], "1");

  // The v0 peer still sees one response frame per request, in order.
  auto count = v0.Execute("SELECT COUNT(*) FROM r");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, "1");
  ASSERT_TRUE(v0.Quit().ok());
}

TEST_F(ServerTest, StatementCacheCountsHitsAndServesRepeats) {
  auto server = StartServer();
  Client client = MustConnect(*server);
  ASSERT_TRUE(client.Execute("CREATE RELATION r (x STRING)").ok());
  ASSERT_TRUE(client.Execute("INSERT INTO r VALUES (v)").ok());

  Counter* hits = db_->metrics()->GetCounter("nf2_stmtcache_hits_total");
  Counter* misses = db_->metrics()->GetCounter("nf2_stmtcache_misses_total");
  const uint64_t hits_before = hits->value();
  const uint64_t misses_before = misses->value();

  // Same text, three spellings that share one canonical key.
  ASSERT_TRUE(client.Execute("SELECT COUNT(*) FROM r").ok());
  ASSERT_TRUE(client.Execute("SELECT COUNT(*) FROM r;").ok());
  ASSERT_TRUE(client.Execute("  SELECT COUNT(*) FROM r ; ").ok());
  EXPECT_EQ(misses->value() - misses_before, 1u);
  EXPECT_GE(hits->value() - hits_before, 2u);

  // The counters are visible over the wire through \metrics.
  auto metrics = client.Execute("\\metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("nf2_stmtcache_hits_total"), std::string::npos);
  EXPECT_NE(metrics->find("nf2_stmtcache_misses_total"), std::string::npos);
}

TEST_F(ServerTest, ProfileReportsStatementCacheHit) {
  auto server = StartServer();
  Client client = MustConnect(*server);
  ASSERT_TRUE(client.Execute("CREATE RELATION r (x STRING)").ok());

  auto first = client.Execute("PROFILE SELECT COUNT(*) FROM r");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_NE(first->find("statement cache: miss"), std::string::npos)
      << *first;
  auto second = client.Execute("PROFILE SELECT COUNT(*) FROM r");
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second->find("statement cache: hit"), std::string::npos)
      << *second;
}

TEST_F(ServerTest, DdlInvalidatesStatementCacheLazilyPerEntry) {
  auto server = StartServer();
  Client client = MustConnect(*server);
  ASSERT_TRUE(client.Execute("CREATE RELATION r (x STRING)").ok());

  Counter* hits = db_->metrics()->GetCounter("nf2_stmtcache_hits_total");
  Counter* misses = db_->metrics()->GetCounter("nf2_stmtcache_misses_total");
  Counter* invalidations =
      db_->metrics()->GetCounter("nf2_stmtcache_invalidations_total");
  server::StatementCache* cache =
      server->session_manager()->statement_cache();

  // Warm the cache, then drop a relation. Epoch keying: the DDL itself
  // evicts nothing — stale entries are detected and dropped on their
  // next lookup instead.
  ASSERT_TRUE(client.Execute("SELECT COUNT(*) FROM r").ok());
  ASSERT_TRUE(client.Execute("SELECT COUNT(*) FROM r").ok());
  const size_t warm_size = cache->size();
  EXPECT_GE(warm_size, 2u);  // SELECT + the CREATE that warmed it.
  const uint64_t invalidations_before = invalidations->value();
  ASSERT_TRUE(client.Execute("DROP RELATION r").ok());
  EXPECT_EQ(invalidations->value(), invalidations_before);
  EXPECT_GE(cache->size(), warm_size);  // Nothing dropped eagerly.

  // The same text parses fresh afterwards — the stale entry counts one
  // invalidation and a miss, never a stale hit.
  ASSERT_TRUE(client.Execute("CREATE RELATION r (x STRING)").ok());
  const uint64_t misses_before = misses->value();
  const uint64_t inval_before = invalidations->value();
  ASSERT_TRUE(client.Execute("SELECT COUNT(*) FROM r").ok());
  EXPECT_EQ(misses->value(), misses_before + 1);
  EXPECT_EQ(invalidations->value(), inval_before + 1);

  // Re-inserted under the current epoch: the next lookup is a hit.
  const uint64_t hits_before = hits->value();
  ASSERT_TRUE(client.Execute("SELECT COUNT(*) FROM r").ok());
  EXPECT_EQ(hits->value(), hits_before + 1);
}

TEST_F(ServerTest, BatchWithDdlInvalidatesCacheMidBatch) {
  auto server = StartServer();
  Client client = MustConnect(*server);

  Counter* invalidations =
      db_->metrics()->GetCounter("nf2_stmtcache_invalidations_total");
  const uint64_t before = invalidations->value();
  // The same CREATE and SELECT texts recur after a DROP inside one
  // batch: neither may reuse its pre-DDL parse — both entries are
  // epoch-stale at their second lookup, so each re-parses (two
  // per-entry invalidations, no whole-cache clear).
  auto results = client.ExecuteBatch({
      "CREATE RELATION s (x STRING)",
      "SELECT COUNT(*) FROM s",
      "DROP RELATION s",
      "CREATE RELATION s (x STRING)",
      "SELECT COUNT(*) FROM s",
  });
  ASSERT_TRUE(results.ok());
  for (const auto& r : *results) ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(invalidations->value(), before + 2);
}

TEST_F(ServerTest, SleepWithoutMillisecondsIsRejected) {
  auto server = StartServer();
  Client client = MustConnect(*server);
  for (const char* bad : {"\\sleep", "\\sleep ", "\\sleep   "}) {
    auto out = client.Execute(bad);
    ASSERT_FALSE(out.ok()) << "'" << bad << "' was accepted: " << *out;
    EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(out.status().message().find("milliseconds"), std::string::npos);
  }
  auto ok = client.Execute("\\sleep 1");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(*ok, "slept 1 ms");
}

// Session-level batch semantics without sockets: the read-run gate
// sharing must not deadlock against meta commands or writes that take
// their own locks, and results stay positional.
TEST_F(ServerTest, SessionExecuteBatchDirect) {
  server::SessionManager manager(db_.get());
  auto session = manager.NewSession();
  auto results = session->ExecuteBatch({
      "CREATE RELATION t (x STRING)",
      "INSERT INTO t VALUES (a)",
      "SELECT COUNT(*) FROM t",
      "LIST",
      "\\metrics",
      "SELECT COUNT(*) FROM t",
      "",
      "DROP RELATION t",
  });
  ASSERT_EQ(results.size(), 8u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  EXPECT_EQ(*results[2], "1");
  EXPECT_TRUE(results[3].ok());
  EXPECT_TRUE(results[4].ok());
  EXPECT_EQ(*results[5], "1");
  ASSERT_FALSE(results[6].ok());
  EXPECT_EQ(results[6].status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(results[7].ok());
}

TEST_F(ServerTest, LargeReadOnlyBatchOverOneConnection) {
  auto server = StartServer();
  Client client = MustConnect(*server);
  ASSERT_TRUE(client.Execute("CREATE RELATION r (x STRING)").ok());
  ASSERT_TRUE(client.Execute("INSERT INTO r VALUES (a), (b), (c)").ok());

  std::vector<std::string> batch(64, "SELECT COUNT(*) FROM r");
  auto results = client.ExecuteBatch(batch);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 64u);
  for (const auto& r : *results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(*r, "3");
  }
  // 63 of the 64 identical statements were cache hits.
  EXPECT_GE(db_->metrics()->GetCounter("nf2_stmtcache_hits_total")->value(),
            63u);
}

// ---- MVCC snapshot reads (DESIGN.md §9). ----

// The lock-free read path is observable: read-only statements acquire
// the engine gate in neither mode, so after a burst of reads both gate
// counters sit exactly where the write burst left them.
TEST_F(ServerTest, ReadOnlyStatementsAcquireNoEngineGate) {
  auto server = StartServer();
  Client client = MustConnect(*server);
  ASSERT_TRUE(client.Execute("CREATE RELATION r (x STRING)").ok());
  ASSERT_TRUE(client.Execute("INSERT INTO r VALUES (a), (b)").ok());

  Counter* shared =
      db_->metrics()->GetCounter("nf2_gate_shared_acquires_total");
  Counter* write =
      db_->metrics()->GetCounter("nf2_gate_write_acquires_total");
  const uint64_t shared_before = shared->value();
  const uint64_t write_before = write->value();

  for (int i = 0; i < 10; ++i) {
    auto out = client.Execute("SELECT COUNT(*) FROM r");
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(*out, "2");
  }
  auto batch = client.ExecuteBatch(
      {"SELECT * FROM r", "LIST", "STATS r", "DESCRIBE r", "\\metrics prom"});
  ASSERT_TRUE(batch.ok());
  for (const auto& r : *batch) ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The snapshot and gate metrics are exported over the wire.
  const std::string& prom = *(*batch)[4];
  for (const char* name :
       {"nf2_snapshot_published_total", "nf2_snapshot_pinned",
        "nf2_snapshot_oldest_age_ms", "nf2_gate_shared_acquires_total",
        "nf2_gate_write_acquires_total", "nf2_gate_write_wait_ns"}) {
    EXPECT_NE(prom.find(name), std::string::npos) << name;
  }

  EXPECT_EQ(shared->value(), shared_before);
  EXPECT_EQ(write->value(), write_before);

  // And writers are counted: one more exclusive acquisition.
  ASSERT_TRUE(client.Execute("INSERT INTO r VALUES (c)").ok());
  EXPECT_EQ(write->value(), write_before + 1);
  EXPECT_EQ(shared->value(), shared_before);
}

// A long read-only batch must not block a concurrent writer: the batch
// holds a pinned snapshot, not a lock, so the writer commits while the
// batch is still executing.
TEST_F(ServerTest, ReadBatchDoesNotBlockConcurrentWriter) {
  auto server = StartServer();
  Client reader = MustConnect(*server);
  Client writer = MustConnect(*server);
  ASSERT_TRUE(reader.Execute("CREATE RELATION r (x STRING)").ok());
  ASSERT_TRUE(reader.Execute("INSERT INTO r VALUES (a)").ok());

  // A batch that reads for >= 400 ms: 4 chunks of \sleep (meta commands
  // flush the read run, so the SELECTs around them pin fresh snapshots
  // — the point here is wall-clock overlap, not pin identity).
  std::atomic<bool> batch_done{false};
  std::thread reading([&] {
    std::vector<std::string> batch;
    for (int i = 0; i < 4; ++i) {
      batch.push_back("SELECT COUNT(*) FROM r");
      batch.push_back("\\sleep 100");
    }
    auto results = reader.ExecuteBatch(batch);
    EXPECT_TRUE(results.ok()) << results.status().ToString();
    for (const auto& r : *results) EXPECT_TRUE(r.ok());
    batch_done.store(true, std::memory_order_release);
  });

  // Give the batch time to start, then write. Under the old shared
  // gate this insert would queue behind the batch's reads; under
  // snapshots it must land while the batch is still running.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  const auto write_start = std::chrono::steady_clock::now();
  auto wrote = writer.Execute("INSERT INTO r VALUES (b)");
  const auto write_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - write_start)
          .count();
  ASSERT_TRUE(wrote.ok()) << wrote.status().ToString();
  EXPECT_FALSE(batch_done.load(std::memory_order_acquire))
      << "batch finished before the write — no overlap was exercised";
  EXPECT_LT(write_ms, 200) << "writer appears to have waited on readers";

  reading.join();
}

// Statements in one batch read-run share a single pinned snapshot: a
// write committed mid-run is invisible to every statement of the run,
// even those executed after the commit landed.
TEST_F(ServerTest, WriteCommittedMidBatchInvisibleToPinnedRun) {
  auto server = StartServer();
  Client reader = MustConnect(*server);
  Client writer = MustConnect(*server);
  ASSERT_TRUE(reader.Execute("CREATE RELATION r (x STRING)").ok());
  ASSERT_TRUE(reader.Execute("INSERT INTO r VALUES (a)").ok());

  // One uninterrupted run of identical counts, long enough for the
  // concurrent writer to commit mid-run.
  std::vector<std::string> batch(200, "SELECT COUNT(*) FROM r");
  std::atomic<bool> start{false};
  std::thread writing([&] {
    while (!start.load(std::memory_order_acquire)) {
    }
    for (int i = 0; i < 20; ++i) {
      auto out = writer.Execute(StrCat("INSERT INTO r VALUES (w", i, ")"));
      EXPECT_TRUE(out.ok()) << out.status().ToString();
    }
  });

  start.store(true, std::memory_order_release);
  auto results = reader.ExecuteBatch(batch);
  writing.join();
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), batch.size());
  // Every count equals the first: the run observed exactly one version.
  const std::string& first = *(*results)[0];
  for (const auto& r : *results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(*r, first);
  }
  // The writes are visible to the next (freshly pinned) statement.
  auto after = reader.Execute("SELECT COUNT(*) FROM r");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, "21");
}

// The index-backed read path (SELECT ... WHERE attr = value plans as an
// index scan) must honor the same pinned-run rule: every statement of a
// batch read-run sees one version, even while a writer commits matching
// tuples mid-run.
TEST_F(ServerTest, IndexedSelectInPinnedRunIsSnapshotConsistent) {
  auto server = StartServer();
  Client reader = MustConnect(*server);
  Client writer = MustConnect(*server);
  ASSERT_TRUE(
      reader.Execute("CREATE RELATION r (A STRING, B STRING)").ok());
  ASSERT_TRUE(reader.Execute("INSERT INTO r VALUES (a1, b0)").ok());

  // Index-backed point counts: the planner answers these from the
  // snapshot's inverted index and frozen dictionary.
  std::vector<std::string> batch(200, "SELECT COUNT(*) FROM r WHERE A = a1");
  std::atomic<bool> start{false};
  std::thread writing([&] {
    while (!start.load(std::memory_order_acquire)) {
    }
    for (int i = 0; i < 20; ++i) {
      auto out =
          writer.Execute(StrCat("INSERT INTO r VALUES (a1, w", i, ")"));
      EXPECT_TRUE(out.ok()) << out.status().ToString();
    }
  });

  start.store(true, std::memory_order_release);
  auto results = reader.ExecuteBatch(batch);
  writing.join();
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), batch.size());
  const std::string& first = *(*results)[0];
  for (const auto& r : *results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(*r, first);
  }
  // The next statement pins a fresh snapshot and sees all commits.
  auto after = reader.Execute("SELECT COUNT(*) FROM r WHERE A = a1");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, "21");
}

// Regression: a DELETE with neither VALUES nor WHERE reaching the
// executor used to abort the server process on an internal check. Over
// the wire it must come back as a clean statement error, and the
// session must stay usable.
TEST_F(ServerTest, MalformedDeleteReturnsErrorNotCrash) {
  auto server = StartServer();
  Client client = MustConnect(*server);
  ASSERT_TRUE(client.Execute("CREATE RELATION r (x STRING)").ok());
  ASSERT_TRUE(client.Execute("INSERT INTO r VALUES (a)").ok());
  auto bad = client.Execute("DELETE FROM r");
  EXPECT_FALSE(bad.ok());
  // The connection survived and the data is intact.
  auto count = client.Execute("SELECT COUNT(*) FROM r");
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(*count, "1");
}

}  // namespace
}  // namespace nf2
