// End-to-end tests of the nf2d server stack: frame protocol, client
// library, worker pool backpressure, and graceful shutdown — real TCP
// sockets on a loopback ephemeral port.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "util/string_util.h"

namespace nf2 {
namespace {

using server::Client;
using server::Server;
using server::ServerOptions;

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("nf2_server_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name())))
               .string();
    std::filesystem::remove_all(dir_);
    auto db = Database::Open(dir_);
    ASSERT_TRUE(db.ok());
    db_ = *std::move(db);
  }
  void TearDown() override {
    db_.reset();
    std::filesystem::remove_all(dir_);
  }

  /// Starts a server on an ephemeral port over db_.
  std::unique_ptr<Server> StartServer(ServerOptions options = {}) {
    options.port = 0;
    auto server = std::make_unique<Server>(db_.get(), options);
    Status s = server->Start();
    EXPECT_TRUE(s.ok()) << s.ToString();
    return server;
  }

  Client MustConnect(const Server& server) {
    auto client = Client::Connect("127.0.0.1", server.port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return *std::move(client);
  }

  std::string dir_;
  std::unique_ptr<Database> db_;
};

TEST_F(ServerTest, PingQueryAndQuitRoundTrip) {
  auto server = StartServer();
  Client client = MustConnect(*server);

  ASSERT_TRUE(client.Ping().ok());

  auto created = client.Execute(
      "CREATE RELATION takes (Student STRING, Course STRING, Club STRING) "
      "MVD Student ->-> Course");
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ASSERT_TRUE(client
                  .Execute("INSERT INTO takes VALUES (ada, algebra, chess), "
                           "(ada, crypto, chess)")
                  .ok());
  auto count = client.Execute("SELECT COUNT(*) FROM takes");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, "2");

  // Typed errors survive the wire: code and message both round-trip.
  auto missing = client.Execute("SELECT * FROM nonesuch");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  EXPECT_NE(missing.status().message().find("nonesuch"), std::string::npos);

  // Prometheus text over the protocol, trailing newline included.
  auto prom = client.Execute("\\metrics prom");
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom->find("nf2_server_requests_total"), std::string::npos);
  EXPECT_EQ(prom->back(), '\n');

  ASSERT_TRUE(client.Quit().ok());
  EXPECT_FALSE(client.connected());
}

TEST_F(ServerTest, ManyClientsReadConcurrently) {
  auto server = StartServer();
  {
    Client setup = MustConnect(*server);
    ASSERT_TRUE(setup.Execute("CREATE RELATION r (a STRING, b STRING)").ok());
    ASSERT_TRUE(
        setup.Execute("INSERT INTO r VALUES (x, y), (u, v), (p, q)").ok());
    ASSERT_TRUE(setup.Quit().ok());
  }

  constexpr int kClients = 8;
  constexpr int kQueriesEach = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&server, &failures, this] {
      auto client = Client::Connect("127.0.0.1", server->port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int q = 0; q < kQueriesEach; ++q) {
        auto out = client->Execute("SELECT COUNT(*) FROM r");
        if (!out.ok() || *out != "3") ++failures;
      }
      if (!client->Quit().ok()) ++failures;
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(db_->metrics()->GetCounter("nf2_server_requests_total")->value(),
            static_cast<uint64_t>(kClients * kQueriesEach));
}

// workers=1, queue=1: one in-flight \sleep plus one queued request
// saturate the server, so a third concurrent request must bounce with
// kBusy (surfaced by the client as kUnavailable).
TEST_F(ServerTest, QueueFullAnswersBusy) {
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  auto server = StartServer(options);

  Client sleeper = MustConnect(*server);
  Client filler = MustConnect(*server);
  Client rejected = MustConnect(*server);

  std::thread sleep_thread([&sleeper] {
    auto out = sleeper.Execute("\\sleep 1500");
    EXPECT_TRUE(out.ok()) << out.status().ToString();
  });
  // Let the sleeper reach the worker, then occupy the single queue slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  std::thread fill_thread([&filler] {
    auto out = filler.Execute("\\sleep 10");
    EXPECT_TRUE(out.ok()) << out.status().ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  auto busy = rejected.Execute("LIST");
  ASSERT_FALSE(busy.ok());
  EXPECT_EQ(busy.status().code(), StatusCode::kUnavailable);

  sleep_thread.join();
  fill_thread.join();
  EXPECT_GE(db_->metrics()->GetCounter("nf2_server_busy_total")->value(), 1u);

  // The server recovered: the rejected client can retry successfully.
  auto retry = rejected.Execute("LIST");
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

// Another session's open transaction bounces mutations with kBusy but
// admits reads.
TEST_F(ServerTest, TransactionConflictAnswersBusyOverTheWire) {
  auto server = StartServer();
  Client owner = MustConnect(*server);
  Client other = MustConnect(*server);

  ASSERT_TRUE(owner.Execute("CREATE RELATION r (x STRING)").ok());
  ASSERT_TRUE(owner.Execute("BEGIN").ok());
  ASSERT_TRUE(owner.Execute("INSERT INTO r VALUES (mine)").ok());

  auto blocked = other.Execute("INSERT INTO r VALUES (theirs)");
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kUnavailable);
  auto read = other.Execute("SELECT COUNT(*) FROM r");
  ASSERT_TRUE(read.ok());

  ASSERT_TRUE(owner.Execute("COMMIT").ok());
  EXPECT_TRUE(other.Execute("INSERT INTO r VALUES (theirs)").ok());
}

// Stop() with a connection mid-transaction: the session's transaction
// rolls back, acknowledged statements survive via the shutdown
// checkpoint, and the engine is left clean.
TEST_F(ServerTest, GracefulShutdownRollsBackOpenTransactions) {
  auto server = StartServer();
  Client client = MustConnect(*server);
  ASSERT_TRUE(client.Execute("CREATE RELATION r (x STRING)").ok());
  ASSERT_TRUE(client.Execute("INSERT INTO r VALUES (durable)").ok());
  ASSERT_TRUE(client.Execute("BEGIN").ok());
  ASSERT_TRUE(client.Execute("INSERT INTO r VALUES (doomed)").ok());
  {
    // Peeking at engine state while the server is live requires the
    // gate, like any other reader.
    auto lock = server->session_manager()->gate()->LockShared();
    ASSERT_TRUE(db_->in_transaction());
  }

  server->Stop();

  EXPECT_FALSE(db_->in_transaction());
  auto scan = db_->Scan("r");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), 1u);
  EXPECT_TRUE(db_->VerifyIntegrity().ok());

  // The connection is dead from the client's point of view.
  EXPECT_FALSE(client.Execute("LIST").ok());
}

TEST_F(ServerTest, StopIsIdempotentAndRestartableDatabase) {
  auto server = StartServer();
  {
    Client client = MustConnect(*server);
    ASSERT_TRUE(client.Execute("CREATE RELATION r (x STRING)").ok());
    ASSERT_TRUE(client.Execute("INSERT INTO r VALUES (v)").ok());
    ASSERT_TRUE(client.Quit().ok());
  }
  server->Stop();
  server->Stop();  // Idempotent.
  server.reset();

  // The shutdown checkpoint made the state durable: reopen and read.
  db_.reset();
  auto reopened = Database::Open(dir_);
  ASSERT_TRUE(reopened.ok());
  auto scan = (*reopened)->Scan("r");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->size(), 1u);
  db_ = *std::move(reopened);
}

TEST_F(ServerTest, OversizedFrameIsRejected) {
  auto server = StartServer();
  Client client = MustConnect(*server);
  // The client-side WriteFrame refuses to build an oversized frame, so
  // this exercises the limit without shipping 64 MiB through loopback.
  std::string huge(server::kMaxFramePayload + 1, 'x');
  auto out = client.Execute(huge);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
}

// ---- Protocol v1: pipelined batches + parsed-statement cache. ----

TEST_F(ServerTest, BatchMixedReadWriteExecutesInOrder) {
  auto server = StartServer();
  Client client = MustConnect(*server);

  auto results = client.ExecuteBatch({
      "CREATE RELATION r (a STRING, b STRING)",
      "INSERT INTO r VALUES (x, y), (u, v)",
      "SELECT COUNT(*) FROM r",
      "INSERT INTO r VALUES (p, q)",
      "SELECT COUNT(*) FROM r",
  });
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 5u);
  for (const auto& r : *results) ASSERT_TRUE(r.ok()) << r.status().ToString();
  // In-order execution is observable through the two counts straddling
  // the second insert.
  EXPECT_EQ(*(*results)[2], "2");
  EXPECT_EQ(*(*results)[4], "3");
}

TEST_F(ServerTest, BatchMidStatementErrorReportsInPlaceAndContinues) {
  auto server = StartServer();
  Client client = MustConnect(*server);
  ASSERT_TRUE(client.Execute("CREATE RELATION r (x STRING)").ok());

  auto results = client.ExecuteBatch({
      "INSERT INTO r VALUES (one)",
      "SELECT * FROM nonesuch",
      "this does not parse",
      "SELECT COUNT(*) FROM r",
  });
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 4u);
  EXPECT_TRUE((*results)[0].ok());
  ASSERT_FALSE((*results)[1].ok());
  EXPECT_EQ((*results)[1].status().code(), StatusCode::kNotFound);
  EXPECT_NE((*results)[1].status().message().find("nonesuch"),
            std::string::npos);
  ASSERT_FALSE((*results)[2].ok());
  EXPECT_EQ((*results)[2].status().code(), StatusCode::kInvalidArgument);
  // The batch kept going after both failures.
  ASSERT_TRUE((*results)[3].ok());
  EXPECT_EQ(*(*results)[3], "1");
}

TEST_F(ServerTest, EmptyBatchIsAnsweredWithEmptyReply) {
  auto server = StartServer();
  Client client = MustConnect(*server);
  auto results = client.ExecuteBatch({});
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  EXPECT_TRUE(results->empty());
}

TEST_F(ServerTest, BatchTransactionConflictSurfacesBusyEntries) {
  auto server = StartServer();
  Client owner = MustConnect(*server);
  Client other = MustConnect(*server);

  ASSERT_TRUE(owner.Execute("CREATE RELATION r (x STRING)").ok());
  ASSERT_TRUE(owner.Execute("BEGIN").ok());
  ASSERT_TRUE(owner.Execute("INSERT INTO r VALUES (mine)").ok());

  // The other session's batch: its write bounces kUnavailable (the
  // per-entry busy tag), but its reads still run.
  auto results = other.ExecuteBatch(
      {"SELECT COUNT(*) FROM r", "INSERT INTO r VALUES (theirs)", "LIST"});
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 3u);
  EXPECT_TRUE((*results)[0].ok());
  ASSERT_FALSE((*results)[1].ok());
  EXPECT_EQ((*results)[1].status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE((*results)[2].ok());

  ASSERT_TRUE(owner.Execute("COMMIT").ok());
}

TEST_F(ServerTest, V0ClientInteroperatesWithV1Server) {
  auto server = StartServer();
  // A pure-v0 peer: only kQuery/kPing/kQuit frames, driven at the frame
  // level exactly as a PR-4 binary would speak them.
  Client v0 = MustConnect(*server);
  ASSERT_TRUE(v0.Ping().ok());
  ASSERT_TRUE(v0.Execute("CREATE RELATION r (x STRING)").ok());

  // A v1 peer batches against the same server between the v0 frames.
  Client v1 = MustConnect(*server);
  auto batched = v1.ExecuteBatch(
      {"INSERT INTO r VALUES (a)", "SELECT COUNT(*) FROM r"});
  ASSERT_TRUE(batched.ok());
  ASSERT_TRUE((*batched)[1].ok());
  EXPECT_EQ(*(*batched)[1], "1");

  // The v0 peer still sees one response frame per request, in order.
  auto count = v0.Execute("SELECT COUNT(*) FROM r");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, "1");
  ASSERT_TRUE(v0.Quit().ok());
}

TEST_F(ServerTest, StatementCacheCountsHitsAndServesRepeats) {
  auto server = StartServer();
  Client client = MustConnect(*server);
  ASSERT_TRUE(client.Execute("CREATE RELATION r (x STRING)").ok());
  ASSERT_TRUE(client.Execute("INSERT INTO r VALUES (v)").ok());

  Counter* hits = db_->metrics()->GetCounter("nf2_stmtcache_hits_total");
  Counter* misses = db_->metrics()->GetCounter("nf2_stmtcache_misses_total");
  const uint64_t hits_before = hits->value();
  const uint64_t misses_before = misses->value();

  // Same text, three spellings that share one canonical key.
  ASSERT_TRUE(client.Execute("SELECT COUNT(*) FROM r").ok());
  ASSERT_TRUE(client.Execute("SELECT COUNT(*) FROM r;").ok());
  ASSERT_TRUE(client.Execute("  SELECT COUNT(*) FROM r ; ").ok());
  EXPECT_EQ(misses->value() - misses_before, 1u);
  EXPECT_GE(hits->value() - hits_before, 2u);

  // The counters are visible over the wire through \metrics.
  auto metrics = client.Execute("\\metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("nf2_stmtcache_hits_total"), std::string::npos);
  EXPECT_NE(metrics->find("nf2_stmtcache_misses_total"), std::string::npos);
}

TEST_F(ServerTest, ProfileReportsStatementCacheHit) {
  auto server = StartServer();
  Client client = MustConnect(*server);
  ASSERT_TRUE(client.Execute("CREATE RELATION r (x STRING)").ok());

  auto first = client.Execute("PROFILE SELECT COUNT(*) FROM r");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_NE(first->find("statement cache: miss"), std::string::npos)
      << *first;
  auto second = client.Execute("PROFILE SELECT COUNT(*) FROM r");
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second->find("statement cache: hit"), std::string::npos)
      << *second;
}

TEST_F(ServerTest, DdlInvalidatesStatementCache) {
  auto server = StartServer();
  Client client = MustConnect(*server);
  ASSERT_TRUE(client.Execute("CREATE RELATION r (x STRING)").ok());

  Counter* misses = db_->metrics()->GetCounter("nf2_stmtcache_misses_total");
  Counter* invalidations =
      db_->metrics()->GetCounter("nf2_stmtcache_invalidations_total");

  // Warm the cache, then drop a relation: the whole cache must empty.
  ASSERT_TRUE(client.Execute("SELECT COUNT(*) FROM r").ok());
  ASSERT_TRUE(client.Execute("SELECT COUNT(*) FROM r").ok());
  const uint64_t invalidations_before = invalidations->value();
  ASSERT_TRUE(client.Execute("DROP RELATION r").ok());
  EXPECT_EQ(invalidations->value(), invalidations_before + 1);
  EXPECT_EQ(server->session_manager()->statement_cache()->size(), 0u);

  // The same text parses fresh afterwards — a miss, not a stale hit.
  ASSERT_TRUE(client.Execute("CREATE RELATION r (x STRING)").ok());
  const uint64_t misses_before = misses->value();
  ASSERT_TRUE(client.Execute("SELECT COUNT(*) FROM r").ok());
  EXPECT_EQ(misses->value(), misses_before + 1);
}

TEST_F(ServerTest, BatchWithDdlInvalidatesCacheMidBatch) {
  auto server = StartServer();
  Client client = MustConnect(*server);

  Counter* invalidations =
      db_->metrics()->GetCounter("nf2_stmtcache_invalidations_total");
  const uint64_t before = invalidations->value();
  auto results = client.ExecuteBatch({
      "CREATE RELATION s (x STRING)",
      "SELECT COUNT(*) FROM s",
      "DROP RELATION s",
  });
  ASSERT_TRUE(results.ok());
  for (const auto& r : *results) ASSERT_TRUE(r.ok()) << r.status().ToString();
  // CREATE and DROP each invalidated.
  EXPECT_EQ(invalidations->value(), before + 2);
  EXPECT_EQ(server->session_manager()->statement_cache()->size(), 0u);
}

TEST_F(ServerTest, SleepWithoutMillisecondsIsRejected) {
  auto server = StartServer();
  Client client = MustConnect(*server);
  for (const char* bad : {"\\sleep", "\\sleep ", "\\sleep   "}) {
    auto out = client.Execute(bad);
    ASSERT_FALSE(out.ok()) << "'" << bad << "' was accepted: " << *out;
    EXPECT_EQ(out.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(out.status().message().find("milliseconds"), std::string::npos);
  }
  auto ok = client.Execute("\\sleep 1");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(*ok, "slept 1 ms");
}

// Session-level batch semantics without sockets: the read-run gate
// sharing must not deadlock against meta commands or writes that take
// their own locks, and results stay positional.
TEST_F(ServerTest, SessionExecuteBatchDirect) {
  server::SessionManager manager(db_.get());
  auto session = manager.NewSession();
  auto results = session->ExecuteBatch({
      "CREATE RELATION t (x STRING)",
      "INSERT INTO t VALUES (a)",
      "SELECT COUNT(*) FROM t",
      "LIST",
      "\\metrics",
      "SELECT COUNT(*) FROM t",
      "",
      "DROP RELATION t",
  });
  ASSERT_EQ(results.size(), 8u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_TRUE(results[1].ok());
  EXPECT_EQ(*results[2], "1");
  EXPECT_TRUE(results[3].ok());
  EXPECT_TRUE(results[4].ok());
  EXPECT_EQ(*results[5], "1");
  ASSERT_FALSE(results[6].ok());
  EXPECT_EQ(results[6].status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(results[7].ok());
}

TEST_F(ServerTest, LargeReadOnlyBatchOverOneConnection) {
  auto server = StartServer();
  Client client = MustConnect(*server);
  ASSERT_TRUE(client.Execute("CREATE RELATION r (x STRING)").ok());
  ASSERT_TRUE(client.Execute("INSERT INTO r VALUES (a), (b), (c)").ok());

  std::vector<std::string> batch(64, "SELECT COUNT(*) FROM r");
  auto results = client.ExecuteBatch(batch);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 64u);
  for (const auto& r : *results) {
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(*r, "3");
  }
  // 63 of the 64 identical statements were cache hits.
  EXPECT_GE(db_->metrics()->GetCounter("nf2_stmtcache_hits_total")->value(),
            63u);
}

}  // namespace
}  // namespace nf2
